(* Tests for the observability layer (ISSUE 2): span nesting and balance
   (including unclosed-span detection), metrics registry semantics and
   histogram bucket edges, Chrome trace_event JSON well-formedness
   (validated by actually parsing it), diagnostics appearing as instant
   events on the active trace, emulator ground-truth profiling on a
   hand-assembled loop, and the eel_objdump --trace flag end to end. *)

module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics
module Json = Eel_obs.Json
module Hotspot = Eel_obs.Hotspot
module Ledger = Eel_obs.Ledger
module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module Diag = Eel_robust.Diag
module Toolbox = Eel_tools.Toolbox

let assemble src =
  match Eel_sparc.Asm.assemble src with
  | Ok e -> e
  | Error m -> Alcotest.failf "assembly failed: %s" m

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let tr = Trace.create () in
  Trace.span tr "outer" (fun () ->
      Trace.span tr "inner-a" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.span tr "inner-b" (fun () -> ignore (Sys.opaque_identity 2)));
  Alcotest.(check int) "span count" 3 (Trace.num_spans tr);
  Alcotest.(check (list string)) "balanced" [] (Trace.unclosed tr);
  let totals = Trace.totals tr in
  let names = List.map (fun (n, _, _) -> n) totals in
  Alcotest.(check (list string))
    "totals names" [ "inner-a"; "inner-b"; "outer" ] names;
  List.iter
    (fun (n, total_us, count) ->
      Alcotest.(check int) (n ^ " count") 1 count;
      if total_us < 0. then Alcotest.failf "%s has negative duration" n)
    totals

let test_span_result_and_exn () =
  let tr = Trace.create () in
  let v = Trace.span tr "compute" (fun () -> 41 + 1) in
  Alcotest.(check int) "value through span" 42 v;
  (* a raising thunk must still close its span *)
  (try Trace.span tr "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (list string)) "exception closed span" [] (Trace.unclosed tr)

let test_unclosed_detection () =
  let tr = Trace.create () in
  Trace.enter tr "left-open";
  Trace.enter tr "also-open";
  Trace.exit tr;
  Alcotest.(check (list string)) "unclosed" [ "left-open" ] (Trace.unclosed tr);
  (* sealing must have closed it with a real duration, so export works *)
  match Json.parse (Trace.to_chrome_json tr) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "sealed trace does not export: %s" m

let test_span_raise_unclosed () =
  (* an exception inside a span closes that span but must not paper over a
     hand-opened enter above it — the leak is still flagged, and the sealed
     trace still exports *)
  let tr = Trace.create () in
  Trace.enter tr "outer-open";
  (try Trace.span tr "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (list string))
    "raiser closed, enter flagged" [ "outer-open" ] (Trace.unclosed tr);
  match Json.parse (Trace.to_chrome_json tr) with
  | Error m -> Alcotest.failf "trace after raise does not export: %s" m
  | Ok root -> (
      match Json.member "traceEvents" root with
      | Some (Json.Arr evs) ->
          let has name =
            List.exists
              (fun ev -> Json.member "name" ev = Some (Json.Str name))
              evs
          in
          Alcotest.(check bool) "raiser span exported" true (has "raiser");
          Alcotest.(check bool) "open span sealed" true (has "outer-open")
      | _ -> Alcotest.fail "no traceEvents after raise")

let test_unmatched_exit () =
  let tr = Trace.create () in
  Trace.exit tr;
  Alcotest.(check (list string))
    "unmatched exit recorded" [ "<exit without enter>" ] (Trace.unclosed tr)

let test_ambient () =
  (* no ambient tracer: with_span is the identity, mark is a no-op *)
  Trace.set_current None;
  Alcotest.(check int) "no tracer" 7 (Trace.with_span "x" (fun () -> 7));
  Trace.mark "dropped";
  let tr = Trace.create () in
  let v =
    Trace.with_current tr (fun () ->
        Trace.with_span "ambient" (fun () ->
            Trace.mark "ping";
            3))
  in
  Alcotest.(check int) "ambient result" 3 v;
  Alcotest.(check int) "ambient recorded" 1 (Trace.num_spans tr);
  (* with_current restored the previous (absent) tracer *)
  Alcotest.(check bool) "restored" true (Trace.get_current () = None)

(* ------------------------------------------------------------------ *)
(* Chrome JSON                                                         *)
(* ------------------------------------------------------------------ *)

let events_of tr =
  match Json.parse (Trace.to_chrome_json tr) with
  | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
  | Ok root -> (
      match Json.member "traceEvents" root with
      | Some (Json.Arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_json () =
  let tr = Trace.create () in
  Trace.span tr "phase \"quoted\"\n" ~args:[ ("k", "v\\w") ] (fun () ->
      Trace.instant tr "tick" ~args:[ ("n", "1") ]);
  let evs = events_of tr in
  Alcotest.(check int) "event count" 2 (List.length evs);
  let phases =
    List.map
      (fun ev ->
        match Json.member "ph" ev with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "event without ph")
      evs
  in
  Alcotest.(check (list string)) "phases" [ "X"; "i" ] phases;
  List.iter
    (fun ev ->
      (match Json.member "ts" ev with
      | Some (Json.Num ts) when ts >= 0. -> ()
      | _ -> Alcotest.fail "bad ts");
      match (Json.member "ph" ev, Json.member "dur" ev) with
      | Some (Json.Str "X"), Some (Json.Num d) when d >= 0. -> ()
      | Some (Json.Str "X"), _ -> Alcotest.fail "X event without dur"
      | _ -> ())
    evs;
  (* the escaped name round-trips through the parser *)
  match Json.member "name" (List.hd evs) with
  | Some (Json.Str s) -> Alcotest.(check string) "escaping" "phase \"quoted\"\n" s
  | _ -> Alcotest.fail "no name"

let test_diag_instants () =
  let tr = Trace.create () in
  Trace.with_current tr (fun () ->
      Trace.with_span "validate" (fun () ->
          let sink = Diag.create () in
          Diag.emit sink Diag.Warn ~source:"test" ~loc:(Diag.at_addr 0x40)
            "suspicious %s" "thing"));
  let warn =
    List.filter
      (fun ev -> Json.member "name" ev = Some (Json.Str "diag:warning"))
      (events_of tr)
  in
  Alcotest.(check int) "one diag instant" 1 (List.length warn);
  match Json.member "args" (List.hd warn) with
  | Some (Json.Obj args) ->
      Alcotest.(check bool)
        "message attached" true
        (List.assoc_opt "message" args = Some (Json.Str "suspicious thing"))
  | _ -> Alcotest.fail "diag instant without args"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters_gauges () =
  Metrics.clear ();
  let c = Metrics.counter "t.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check bool) "counter" true (Metrics.find "t.count" = Some (Metrics.Int 5));
  (* registration is idempotent: same ref comes back *)
  Metrics.incr (Metrics.counter "t.count");
  Alcotest.(check bool) "idempotent" true (Metrics.find "t.count" = Some (Metrics.Int 6));
  (* kind mismatch is an error *)
  (match Metrics.gauge "t.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  Metrics.gauge_fn "t.live" (fun () -> 2.5);
  Alcotest.(check bool) "gauge_fn" true (Metrics.find "t.live" = Some (Metrics.Float 2.5));
  Metrics.reset ();
  Alcotest.(check bool) "reset counter" true (Metrics.find "t.count" = Some (Metrics.Int 0));
  Alcotest.(check bool) "gauge_fn survives reset" true
    (Metrics.find "t.live" = Some (Metrics.Float 2.5));
  Metrics.clear ()

let test_histogram_edges () =
  Metrics.clear ();
  let h = Metrics.histogram ~edges:[| 1.; 2.; 5. |] "t.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 2.1; 5.0; 7.0 ];
  (match Metrics.find "t.hist" with
  | Some (Metrics.Hist { counts; n; sum; _ }) ->
      (* bucket semantics: first edge >= v; edge values land inclusively *)
      Alcotest.(check (array int)) "bucket counts" [| 2; 2; 2; 1 |] counts;
      Alcotest.(check int) "n" 7 n;
      Alcotest.(check (float 1e-9)) "sum" 19.1 sum
  | _ -> Alcotest.fail "histogram not found");
  (match Metrics.histogram ~edges:[| 2.; 1. |] "t.bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted edges accepted");
  (* the JSON rendering of the whole registry parses *)
  (match Json.parse (Metrics.to_json ()) with
  | Ok (Json.Obj kvs) ->
      Alcotest.(check bool) "hist in json" true (List.mem_assoc "t.hist" kvs)
  | Ok _ -> Alcotest.fail "metrics json is not an object"
  | Error m -> Alcotest.failf "metrics json invalid: %s" m);
  Metrics.clear ()

(* ------------------------------------------------------------------ *)
(* Emulator ground-truth profiling                                     *)
(* ------------------------------------------------------------------ *)

(* A hand-assembled counted loop: the body executes exactly 5 times, the
   loop-head block is re-entered via the taken branch exactly 4 times.
   (The label must not start with 'L': local labels never reach the
   symbol table.) *)
let loop_src =
  {|
main:   mov 5, %l0
top:    subcc %l0, 1, %l0
        bne top
        nop
        mov 0, %o0
        ta 1
        nop
|}

let find_sym exe name =
  match
    List.find_opt (fun (s : Sef.symbol) -> s.Sef.sym_name = name) exe.Sef.symbols
  with
  | Some s -> s.Sef.value
  | None -> Alcotest.failf "symbol %s not found" name

let test_emu_block_counts () =
  let exe = assemble loop_src in
  let top = find_sym exe "top" in
  let main = find_sym exe "main" in
  let p = Emu.create_profile () in
  let r, _ = Emu.run_exe ~profile:p exe in
  Alcotest.(check int) "exit" 0 r.Emu.exit_code;
  (* every executed instruction is profiled *)
  Alcotest.(check int) "fuel consumed" r.Emu.insns p.Emu.p_insns;
  (* loop head executed once per iteration *)
  Alcotest.(check int) "top executions" 5 (Emu.pc_count p top);
  (* ... but entered as a block only via the 4 taken back edges *)
  Alcotest.(check int) "top block entries" 4 (Emu.block_count p top);
  (* program start is a block entry *)
  Alcotest.(check int) "entry block" 1 (Emu.block_count p main);
  (* dynamic class mix: bne x5 = branch; mov + subcc x5 + mov = alu;
     the delay-slot nop (sethi 0, %g0) x5 = sethi; ta 1 = trap *)
  let mix = Emu.class_mix p in
  Alcotest.(check int) "branch mix" 5 (List.assoc "branch" mix);
  Alcotest.(check int) "trap mix" 1 (List.assoc "trap" mix);
  Alcotest.(check int) "alu mix" 7 (List.assoc "alu" mix);
  Alcotest.(check int) "sethi mix" 5 (List.assoc "sethi" mix);
  (* publishing surfaces the same numbers in the registry *)
  Metrics.clear ();
  Emu.publish_profile p;
  Alcotest.(check bool) "emu.insns metric" true
    (Metrics.find "emu.insns" = Some (Metrics.Float (float_of_int r.Emu.insns)));
  Metrics.clear ()

(* ------------------------------------------------------------------ *)
(* Hotspot attribution                                                 *)
(* ------------------------------------------------------------------ *)

let test_hotspot_routines () =
  let h = Hotspot.create ~classes:[| "alu"; "load" |] () in
  Hotspot.add h ~stack:[ "main" ] ~classes:[| 3; 2 |] ~self:5 ();
  Hotspot.add h ~stack:[ "main"; "fib" ] ~self:5 ();
  Hotspot.add h ~stack:[ "main"; "fib"; "fib" ] ~self:12 ();
  Alcotest.(check int) "grand total" 22 (Hotspot.total h);
  let find name =
    match
      List.find_opt (fun r -> r.Hotspot.rs_name = name) (Hotspot.routines h)
    with
    | Some r -> r
    | None -> Alcotest.failf "routine %s not attributed" name
  in
  let main = find "main" and fib = find "fib" in
  Alcotest.(check int) "main self" 5 main.Hotspot.rs_self;
  Alcotest.(check int) "main total" 22 main.Hotspot.rs_total;
  Alcotest.(check int) "fib self" 17 fib.Hotspot.rs_self;
  (* recursion: fib-under-fib counts toward fib's total exactly once *)
  Alcotest.(check int) "fib total (recursion once)" 17 fib.Hotspot.rs_total;
  Alcotest.(check (array int)) "main class mix" [| 3; 2 |] main.Hotspot.rs_classes;
  Alcotest.(check string) "collapsed stacks"
    "main 5\nmain;fib 5\nmain;fib;fib 12\n" (Hotspot.collapsed h)

let test_hotspot_merge_and_export () =
  let h = Hotspot.create () in
  Hotspot.add h ~stack:[ "a"; "b" ] ~self:7 ();
  let other = Hotspot.create () in
  (* frame names with separators must be sanitized, not corrupt the file *)
  Hotspot.add other ~stack:[ "a"; "b" ] ~self:2 ();
  Hotspot.add other ~stack:[ "frame;with space" ] ~self:1 ();
  Hotspot.merge ~into:h other;
  Alcotest.(check int) "merged total" 10 (Hotspot.total h);
  Alcotest.(check string) "merged collapsed" "a;b 9\nframe_with_space 1\n"
    (Hotspot.collapsed h);
  match Json.parse (Hotspot.speedscope_json h) with
  | Error m -> Alcotest.failf "speedscope export is not JSON: %s" m
  | Ok root -> (
      (match Json.member "$schema" root with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "speedscope export without $schema");
      match Json.member "profiles" root with
      | Some (Json.Arr [ prof ]) -> (
          match Json.member "endValue" prof with
          | Some (Json.Num ev) ->
              Alcotest.(check int) "endValue = total" 10 (int_of_float ev)
          | _ -> Alcotest.fail "profile without endValue")
      | _ -> Alcotest.fail "expected exactly one profile")

(* A two-call program: every dynamic instruction must land in a named
   calling context, and returns must unwind back to the caller so main's
   inclusive total covers the whole run. *)
let call_src =
  {|
main:   call sub
        nop
        call sub
        nop
        mov 0, %o0
        ta 1
        nop
sub:    retl
        nop
|}

let test_emu_cct () =
  let exe = assemble call_src in
  let sub = find_sym exe "sub" in
  let p = Emu.create_profile () in
  let r, _ = Emu.run_exe ~profile:p exe in
  Alcotest.(check int) "exit" 0 r.Emu.exit_code;
  let name_of pc =
    if pc = sub then "sub" else Printf.sprintf "0x%x" pc
  in
  let h = Emu.profile_hotspot ~name_of ~root:"main" p in
  (* every executed instruction is attributed to some context *)
  Alcotest.(check int) "attributed = executed" r.Emu.insns (Hotspot.total h);
  let find name =
    match
      List.find_opt (fun s -> s.Hotspot.rs_name = name) (Hotspot.routines h)
    with
    | Some s -> s
    | None -> Alcotest.failf "routine %s not in hotspot" name
  in
  let main = find "main" and subr = find "sub" in
  (* main: call,nop x2 + mov + ta = 6 self; everything inclusive *)
  Alcotest.(check int) "main self" 6 main.Hotspot.rs_self;
  Alcotest.(check int) "main total" r.Emu.insns main.Hotspot.rs_total;
  (* sub: retl + delay nop, entered twice *)
  Alcotest.(check int) "sub self" 4 subr.Hotspot.rs_self;
  Alcotest.(check int) "sub total" 4 subr.Hotspot.rs_total;
  (* the collapsed view shows the return actually unwound: sub never
     appears stacked under itself *)
  Alcotest.(check string) "collapsed" "main 6\nmain;sub 4\n"
    (Hotspot.collapsed h)

(* ------------------------------------------------------------------ *)
(* Overhead ledger                                                     *)
(* ------------------------------------------------------------------ *)

let sample_entry =
  {
    Ledger.le_tool = "qpt2";
    le_prog = "fib";
    le_verdict = "equivalent";
    le_sites = 3;
    le_bytes_orig = 100;
    le_bytes_edited = 160;
    le_routines_touched = 2;
    le_insns_orig = 50;
    le_insns_edited = 80;
    le_mem_orig = 10;
    le_mem_edited = 14;
    le_stores_masked = 4;
    le_traps_masked = 1;
    le_sys_masked = 0;
    le_unexplained = 0;
  }

let test_ledger_record () =
  Metrics.clear ();
  Ledger.reset ();
  Ledger.record sample_entry;
  Alcotest.(check int) "one entry" 1 (List.length (Ledger.entries ()));
  let e = List.hd (Ledger.entries ()) in
  Alcotest.(check int) "bytes added" 60 (Ledger.bytes_added e);
  Alcotest.(check int) "extra insns" 30 (Ledger.extra_insns e);
  Alcotest.(check int) "extra mem" 4 (Ledger.extra_mem e);
  Alcotest.(check int) "masked" 5 (Ledger.masked e);
  Alcotest.(check (float 1e-9)) "expansion" 1.6 (Ledger.expansion e);
  Alcotest.(check bool) "counter published" true
    (Metrics.find "eel.ledger.qpt2.bytes_added" = Some (Metrics.Int 60));
  (* re-recording the same (tool, prog) replaces, never duplicates *)
  Ledger.record { sample_entry with Ledger.le_sites = 5 };
  (match Ledger.entries () with
  | [ e ] -> Alcotest.(check int) "replaced sites" 5 e.Ledger.le_sites
  | es -> Alcotest.failf "expected 1 entry after replace, got %d" (List.length es));
  (* the JSON rendering parses *)
  (match Json.parse (Ledger.to_json (Ledger.entries ())) with
  | Ok (Json.Arr [ _ ]) -> ()
  | Ok _ -> Alcotest.fail "ledger json shape"
  | Error m -> Alcotest.failf "ledger json invalid: %s" m);
  Ledger.reset ();
  Metrics.clear ()

let test_measure_cross_check () =
  Metrics.clear ();
  Ledger.reset ();
  let exe = assemble (List.assoc "fib" Eel_diffexec.Corpus.sources) in
  (match Toolbox.measure ~prog:"fib" "qpt2" Eel_sparc.Mach.mach exe with
  | Error e -> Alcotest.failf "measure failed: %s" (Diag.error_message e)
  | Ok ms ->
      let e = ms.Toolbox.ms_entry in
      Alcotest.(check string) "verdict" "equivalent" e.Ledger.le_verdict;
      Alcotest.(check string) "program" "fib" e.Ledger.le_prog;
      (* the zero-unexplained identity: every extra dynamic store the
         edited binary executed is accounted for by a masked event *)
      Alcotest.(check int) "unexplained overhead" 0 e.Ledger.le_unexplained;
      Alcotest.(check bool) "sites placed" true (e.Ledger.le_sites > 0);
      Alcotest.(check bool) "image grew" true (Ledger.bytes_added e > 0);
      Alcotest.(check bool) "run grew" true (Ledger.extra_insns e > 0);
      Alcotest.(check bool) "profiling stores masked" true
        (e.Ledger.le_stores_masked > 0);
      Alcotest.(check bool) "routines touched" true
        (e.Ledger.le_routines_touched > 0);
      (* measure recorded the entry in the ambient ledger *)
      Alcotest.(check int) "ledger entry recorded" 1
        (List.length (Ledger.entries ())));
  Ledger.reset ();
  Metrics.clear ()

(* ------------------------------------------------------------------ *)
(* trace_check on hotspot exports                                      *)
(* ------------------------------------------------------------------ *)

let bin name =
  Filename.concat (Filename.dirname Sys.executable_name) ("../bin/" ^ name)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_trace_check_exports () =
  let h = Hotspot.create () in
  Hotspot.add h ~stack:[ "a"; "b" ] ~self:7 ();
  Hotspot.add h ~stack:[ "a" ] ~self:3 ();
  let flame = Filename.temp_file "eel_obs" ".flame" in
  let scope = Filename.temp_file "eel_obs" ".speedscope.json" in
  write_file flame (Hotspot.collapsed h);
  write_file scope (Hotspot.speedscope_json h);
  let run args =
    Sys.command
      (Printf.sprintf "%s %s > /dev/null 2>&1"
         (Filename.quote (bin "trace_check.exe"))
         args)
  in
  Alcotest.(check int) "both formats validate with the right total" 0
    (run
       (Printf.sprintf "--total 10 %s %s" (Filename.quote flame)
          (Filename.quote scope)));
  Alcotest.(check int) "wrong total rejected (collapsed)" 1
    (run (Printf.sprintf "--total 11 %s" (Filename.quote flame)));
  Alcotest.(check int) "wrong total rejected (speedscope)" 1
    (run (Printf.sprintf "--total 11 %s" (Filename.quote scope)));
  (* a truncated export must not validate *)
  write_file flame "a;b notanumber\n";
  Alcotest.(check int) "malformed collapsed rejected" 1
    (run (Filename.quote flame));
  Sys.remove flame;
  Sys.remove scope

(* ------------------------------------------------------------------ *)
(* perf-regression gate                                                *)
(* ------------------------------------------------------------------ *)

let test_perf_gate () =
  let regress =
    Filename.concat (Filename.dirname Sys.executable_name)
      "../bench/regress.exe"
  in
  let base = Filename.temp_file "eel_perf" ".json" in
  let hist = Filename.temp_file "eel_perf" ".jsonl" in
  let run env args =
    Sys.command
      (Printf.sprintf
         "EEL_PERF_BUDGET=smoke EEL_PERF_HISTORY=%s %s %s %s > /dev/null 2>&1"
         (Filename.quote hist) env
         (Filename.quote regress)
         args)
  in
  Alcotest.(check int) "baseline written" 0
    (run "" (Printf.sprintf "--write-baseline %s" (Filename.quote base)));
  (* unchanged tree: same-machine remeasure stays inside the tolerance *)
  Alcotest.(check int) "gate passes on unchanged tree" 0
    (run
       (Printf.sprintf "EEL_PERF_BASELINE=%s EEL_REGRESS_TOL=0.18"
          (Filename.quote base))
       "");
  (* a seeded 26% throughput regression must fail the default 12% gate *)
  Alcotest.(check int) "gate fails on seeded regression" 1
    (run
       (Printf.sprintf "EEL_PERF_BASELINE=%s EEL_PERF_HANDICAP=1.35"
          (Filename.quote base))
       "");
  (* every run appended one trajectory-history line *)
  let ic = open_in hist in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Alcotest.(check int) "history lines" 2 !lines;
  Sys.remove base;
  Sys.remove hist

(* ------------------------------------------------------------------ *)
(* eel_objdump --trace, end to end                                     *)
(* ------------------------------------------------------------------ *)

let test_objdump_trace () =
  let exe =
    Eel_workload.Gen.assemble_program
      { Eel_workload.Gen.default with seed = 5; routines = 6 }
  in
  let dir = Filename.temp_file "eel_obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sef = Filename.concat dir "w.sef" in
  let trace = Filename.concat dir "t.json" in
  Sef.write_file sef exe;
  (* locate the tool next to this test binary so the test is cwd-agnostic
     (dune runtest runs in _build/default/test, dune exec in the root) *)
  let objdump =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/eel_objdump.exe"
  in
  let cmd =
    Printf.sprintf "%s --trace %s %s > /dev/null" (Filename.quote objdump)
      (Filename.quote trace) (Filename.quote sef)
  in
  Alcotest.(check int) "objdump exit" 0 (Sys.command cmd);
  let ic = open_in_bin trace in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Json.parse src with
  | Error m -> Alcotest.failf "--trace output is not JSON: %s" m
  | Ok root -> (
      match Json.member "traceEvents" root with
      | Some (Json.Arr evs) ->
          let has name =
            List.exists (fun ev -> Json.member "name" ev = Some (Json.Str name)) evs
          in
          Alcotest.(check bool) "load span" true (has "load");
          Alcotest.(check bool) "cfg spans" true (has "cfg.build");
          Alcotest.(check bool) "analyze span" true (has "analyze")
      | _ -> Alcotest.fail "no traceEvents"));
  Sys.remove trace;
  Sys.remove sef;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and totals" `Quick test_span_nesting;
          Alcotest.test_case "result and exception paths" `Quick test_span_result_and_exn;
          Alcotest.test_case "raise under open enter" `Quick test_span_raise_unclosed;
          Alcotest.test_case "unclosed-span detection" `Quick test_unclosed_detection;
          Alcotest.test_case "unmatched exit" `Quick test_unmatched_exit;
          Alcotest.test_case "ambient tracer" `Quick test_ambient;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON well-formed" `Quick test_chrome_json;
          Alcotest.test_case "diagnostics as instants" `Quick test_diag_instants;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
        ] );
      ( "emu-profile",
        [
          Alcotest.test_case "loop block counts" `Quick test_emu_block_counts;
          Alcotest.test_case "calling-context attribution" `Quick test_emu_cct;
        ] );
      ( "hotspot",
        [
          Alcotest.test_case "routines and recursion" `Quick test_hotspot_routines;
          Alcotest.test_case "merge and speedscope export" `Quick
            test_hotspot_merge_and_export;
          Alcotest.test_case "trace_check validates exports" `Quick
            test_trace_check_exports;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "record and render" `Quick test_ledger_record;
          Alcotest.test_case "measure cross-check" `Quick test_measure_cross_check;
        ] );
      ( "perf-gate",
        [
          Alcotest.test_case "pass, seeded regression, history" `Quick
            test_perf_gate;
        ] );
      ( "tools",
        [
          Alcotest.test_case "eel_objdump --trace" `Quick test_objdump_trace;
        ] );
    ]
