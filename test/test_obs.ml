(* Tests for the observability layer (ISSUE 2): span nesting and balance
   (including unclosed-span detection), metrics registry semantics and
   histogram bucket edges, Chrome trace_event JSON well-formedness
   (validated by actually parsing it), diagnostics appearing as instant
   events on the active trace, emulator ground-truth profiling on a
   hand-assembled loop, and the eel_objdump --trace flag end to end. *)

module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics
module Json = Eel_obs.Json
module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module Diag = Eel_robust.Diag

let assemble src =
  match Eel_sparc.Asm.assemble src with
  | Ok e -> e
  | Error m -> Alcotest.failf "assembly failed: %s" m

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let tr = Trace.create () in
  Trace.span tr "outer" (fun () ->
      Trace.span tr "inner-a" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.span tr "inner-b" (fun () -> ignore (Sys.opaque_identity 2)));
  Alcotest.(check int) "span count" 3 (Trace.num_spans tr);
  Alcotest.(check (list string)) "balanced" [] (Trace.unclosed tr);
  let totals = Trace.totals tr in
  let names = List.map (fun (n, _, _) -> n) totals in
  Alcotest.(check (list string))
    "totals names" [ "inner-a"; "inner-b"; "outer" ] names;
  List.iter
    (fun (n, total_us, count) ->
      Alcotest.(check int) (n ^ " count") 1 count;
      if total_us < 0. then Alcotest.failf "%s has negative duration" n)
    totals

let test_span_result_and_exn () =
  let tr = Trace.create () in
  let v = Trace.span tr "compute" (fun () -> 41 + 1) in
  Alcotest.(check int) "value through span" 42 v;
  (* a raising thunk must still close its span *)
  (try Trace.span tr "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (list string)) "exception closed span" [] (Trace.unclosed tr)

let test_unclosed_detection () =
  let tr = Trace.create () in
  Trace.enter tr "left-open";
  Trace.enter tr "also-open";
  Trace.exit tr;
  Alcotest.(check (list string)) "unclosed" [ "left-open" ] (Trace.unclosed tr);
  (* sealing must have closed it with a real duration, so export works *)
  match Json.parse (Trace.to_chrome_json tr) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "sealed trace does not export: %s" m

let test_unmatched_exit () =
  let tr = Trace.create () in
  Trace.exit tr;
  Alcotest.(check (list string))
    "unmatched exit recorded" [ "<exit without enter>" ] (Trace.unclosed tr)

let test_ambient () =
  (* no ambient tracer: with_span is the identity, mark is a no-op *)
  Trace.set_current None;
  Alcotest.(check int) "no tracer" 7 (Trace.with_span "x" (fun () -> 7));
  Trace.mark "dropped";
  let tr = Trace.create () in
  let v =
    Trace.with_current tr (fun () ->
        Trace.with_span "ambient" (fun () ->
            Trace.mark "ping";
            3))
  in
  Alcotest.(check int) "ambient result" 3 v;
  Alcotest.(check int) "ambient recorded" 1 (Trace.num_spans tr);
  (* with_current restored the previous (absent) tracer *)
  Alcotest.(check bool) "restored" true (Trace.get_current () = None)

(* ------------------------------------------------------------------ *)
(* Chrome JSON                                                         *)
(* ------------------------------------------------------------------ *)

let events_of tr =
  match Json.parse (Trace.to_chrome_json tr) with
  | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
  | Ok root -> (
      match Json.member "traceEvents" root with
      | Some (Json.Arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_json () =
  let tr = Trace.create () in
  Trace.span tr "phase \"quoted\"\n" ~args:[ ("k", "v\\w") ] (fun () ->
      Trace.instant tr "tick" ~args:[ ("n", "1") ]);
  let evs = events_of tr in
  Alcotest.(check int) "event count" 2 (List.length evs);
  let phases =
    List.map
      (fun ev ->
        match Json.member "ph" ev with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "event without ph")
      evs
  in
  Alcotest.(check (list string)) "phases" [ "X"; "i" ] phases;
  List.iter
    (fun ev ->
      (match Json.member "ts" ev with
      | Some (Json.Num ts) when ts >= 0. -> ()
      | _ -> Alcotest.fail "bad ts");
      match (Json.member "ph" ev, Json.member "dur" ev) with
      | Some (Json.Str "X"), Some (Json.Num d) when d >= 0. -> ()
      | Some (Json.Str "X"), _ -> Alcotest.fail "X event without dur"
      | _ -> ())
    evs;
  (* the escaped name round-trips through the parser *)
  match Json.member "name" (List.hd evs) with
  | Some (Json.Str s) -> Alcotest.(check string) "escaping" "phase \"quoted\"\n" s
  | _ -> Alcotest.fail "no name"

let test_diag_instants () =
  let tr = Trace.create () in
  Trace.with_current tr (fun () ->
      Trace.with_span "validate" (fun () ->
          let sink = Diag.create () in
          Diag.emit sink Diag.Warn ~source:"test" ~loc:(Diag.at_addr 0x40)
            "suspicious %s" "thing"));
  let warn =
    List.filter
      (fun ev -> Json.member "name" ev = Some (Json.Str "diag:warning"))
      (events_of tr)
  in
  Alcotest.(check int) "one diag instant" 1 (List.length warn);
  match Json.member "args" (List.hd warn) with
  | Some (Json.Obj args) ->
      Alcotest.(check bool)
        "message attached" true
        (List.assoc_opt "message" args = Some (Json.Str "suspicious thing"))
  | _ -> Alcotest.fail "diag instant without args"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters_gauges () =
  Metrics.clear ();
  let c = Metrics.counter "t.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check bool) "counter" true (Metrics.find "t.count" = Some (Metrics.Int 5));
  (* registration is idempotent: same ref comes back *)
  Metrics.incr (Metrics.counter "t.count");
  Alcotest.(check bool) "idempotent" true (Metrics.find "t.count" = Some (Metrics.Int 6));
  (* kind mismatch is an error *)
  (match Metrics.gauge "t.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  Metrics.gauge_fn "t.live" (fun () -> 2.5);
  Alcotest.(check bool) "gauge_fn" true (Metrics.find "t.live" = Some (Metrics.Float 2.5));
  Metrics.reset ();
  Alcotest.(check bool) "reset counter" true (Metrics.find "t.count" = Some (Metrics.Int 0));
  Alcotest.(check bool) "gauge_fn survives reset" true
    (Metrics.find "t.live" = Some (Metrics.Float 2.5));
  Metrics.clear ()

let test_histogram_edges () =
  Metrics.clear ();
  let h = Metrics.histogram ~edges:[| 1.; 2.; 5. |] "t.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 2.1; 5.0; 7.0 ];
  (match Metrics.find "t.hist" with
  | Some (Metrics.Hist { counts; n; sum; _ }) ->
      (* bucket semantics: first edge >= v; edge values land inclusively *)
      Alcotest.(check (array int)) "bucket counts" [| 2; 2; 2; 1 |] counts;
      Alcotest.(check int) "n" 7 n;
      Alcotest.(check (float 1e-9)) "sum" 19.1 sum
  | _ -> Alcotest.fail "histogram not found");
  (match Metrics.histogram ~edges:[| 2.; 1. |] "t.bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted edges accepted");
  (* the JSON rendering of the whole registry parses *)
  (match Json.parse (Metrics.to_json ()) with
  | Ok (Json.Obj kvs) ->
      Alcotest.(check bool) "hist in json" true (List.mem_assoc "t.hist" kvs)
  | Ok _ -> Alcotest.fail "metrics json is not an object"
  | Error m -> Alcotest.failf "metrics json invalid: %s" m);
  Metrics.clear ()

(* ------------------------------------------------------------------ *)
(* Emulator ground-truth profiling                                     *)
(* ------------------------------------------------------------------ *)

(* A hand-assembled counted loop: the body executes exactly 5 times, the
   loop-head block is re-entered via the taken branch exactly 4 times.
   (The label must not start with 'L': local labels never reach the
   symbol table.) *)
let loop_src =
  {|
main:   mov 5, %l0
top:    subcc %l0, 1, %l0
        bne top
        nop
        mov 0, %o0
        ta 1
        nop
|}

let find_sym exe name =
  match
    List.find_opt (fun (s : Sef.symbol) -> s.Sef.sym_name = name) exe.Sef.symbols
  with
  | Some s -> s.Sef.value
  | None -> Alcotest.failf "symbol %s not found" name

let test_emu_block_counts () =
  let exe = assemble loop_src in
  let top = find_sym exe "top" in
  let main = find_sym exe "main" in
  let p = Emu.create_profile () in
  let r, _ = Emu.run_exe ~profile:p exe in
  Alcotest.(check int) "exit" 0 r.Emu.exit_code;
  (* every executed instruction is profiled *)
  Alcotest.(check int) "fuel consumed" r.Emu.insns p.Emu.p_insns;
  (* loop head executed once per iteration *)
  Alcotest.(check int) "top executions" 5 (Emu.pc_count p top);
  (* ... but entered as a block only via the 4 taken back edges *)
  Alcotest.(check int) "top block entries" 4 (Emu.block_count p top);
  (* program start is a block entry *)
  Alcotest.(check int) "entry block" 1 (Emu.block_count p main);
  (* dynamic class mix: bne x5 = branch; mov + subcc x5 + mov = alu;
     the delay-slot nop (sethi 0, %g0) x5 = sethi; ta 1 = trap *)
  let mix = Emu.class_mix p in
  Alcotest.(check int) "branch mix" 5 (List.assoc "branch" mix);
  Alcotest.(check int) "trap mix" 1 (List.assoc "trap" mix);
  Alcotest.(check int) "alu mix" 7 (List.assoc "alu" mix);
  Alcotest.(check int) "sethi mix" 5 (List.assoc "sethi" mix);
  (* publishing surfaces the same numbers in the registry *)
  Metrics.clear ();
  Emu.publish_profile p;
  Alcotest.(check bool) "emu.insns metric" true
    (Metrics.find "emu.insns" = Some (Metrics.Float (float_of_int r.Emu.insns)));
  Metrics.clear ()

(* ------------------------------------------------------------------ *)
(* eel_objdump --trace, end to end                                     *)
(* ------------------------------------------------------------------ *)

let test_objdump_trace () =
  let exe =
    Eel_workload.Gen.assemble_program
      { Eel_workload.Gen.default with seed = 5; routines = 6 }
  in
  let dir = Filename.temp_file "eel_obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sef = Filename.concat dir "w.sef" in
  let trace = Filename.concat dir "t.json" in
  Sef.write_file sef exe;
  (* locate the tool next to this test binary so the test is cwd-agnostic
     (dune runtest runs in _build/default/test, dune exec in the root) *)
  let objdump =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/eel_objdump.exe"
  in
  let cmd =
    Printf.sprintf "%s --trace %s %s > /dev/null" (Filename.quote objdump)
      (Filename.quote trace) (Filename.quote sef)
  in
  Alcotest.(check int) "objdump exit" 0 (Sys.command cmd);
  let ic = open_in_bin trace in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Json.parse src with
  | Error m -> Alcotest.failf "--trace output is not JSON: %s" m
  | Ok root -> (
      match Json.member "traceEvents" root with
      | Some (Json.Arr evs) ->
          let has name =
            List.exists (fun ev -> Json.member "name" ev = Some (Json.Str name)) evs
          in
          Alcotest.(check bool) "load span" true (has "load");
          Alcotest.(check bool) "cfg spans" true (has "cfg.build");
          Alcotest.(check bool) "analyze span" true (has "analyze")
      | _ -> Alcotest.fail "no traceEvents"));
  Sys.remove trace;
  Sys.remove sef;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and totals" `Quick test_span_nesting;
          Alcotest.test_case "result and exception paths" `Quick test_span_result_and_exn;
          Alcotest.test_case "unclosed-span detection" `Quick test_unclosed_detection;
          Alcotest.test_case "unmatched exit" `Quick test_unmatched_exit;
          Alcotest.test_case "ambient tracer" `Quick test_ambient;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON well-formed" `Quick test_chrome_json;
          Alcotest.test_case "diagnostics as instants" `Quick test_diag_instants;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
        ] );
      ( "emu-profile",
        [
          Alcotest.test_case "loop block counts" `Quick test_emu_block_counts;
        ] );
      ( "tools",
        [
          Alcotest.test_case "eel_objdump --trace" `Quick test_objdump_trace;
        ] );
    ]
