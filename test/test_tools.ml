(* End-to-end tests for the paper's §5 tools: qpt2 (edge profiling),
   oldqpt (the ad-hoc baseline), Active Memory (in-line cache simulation),
   SFI (sandboxing), and the address tracer. Each tool's edited executable
   is run in the emulator and validated against ground truth. *)

module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module E = Eel.Executable
module Qpt2 = Eel_tools.Qpt2
module Oldqpt = Eel_tools.Oldqpt
module Amemory = Eel_tools.Amemory
module Sfi = Eel_tools.Sfi
module Tracer = Eel_tools.Tracer
open Eel_sparc

let mach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let workload ?(style = Eel_workload.Gen.Gcc) ?(routines = 15) ?(seed = 3) () =
  match
    Asm.assemble
      (Eel_workload.Gen.program
         { Eel_workload.Gen.default with style; routines; seed })
  with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "workload assembly failed: %s" m

(* ------------------------------------------------------------------ *)
(* qpt2                                                                *)
(* ------------------------------------------------------------------ *)

let test_qpt2_loop () =
  let exe =
    assemble
      {|
main:   mov 5, %l0
Lloop:  subcc %l0, 1, %l0
        bne Lloop
        nop
        mov 0, %o0
        ta 1
|}
  in
  let orig, _ = Emu.run_exe exe in
  let prof = Qpt2.instrument mach exe in
  let res, st = Emu.run_exe prof.Qpt2.edited in
  Alcotest.(check string) "output" orig.Emu.out res.Emu.out;
  let counts = List.map snd (Qpt2.counts prof st.Emu.mem) in
  (* loop branch: 4 back-edge executions + 1 exit *)
  Alcotest.(check int) "two counters" 2 (List.length counts);
  Alcotest.(check bool) "back edge 4 + exit 1" true
    (List.sort compare counts = [ 1; 4 ])

let test_qpt2_workload () =
  List.iter
    (fun style ->
      let exe = workload ~style () in
      let orig, _ = Emu.run_exe exe in
      let prof = Qpt2.instrument mach exe in
      let res, st = Emu.run_exe prof.Qpt2.edited in
      Alcotest.(check string) "output preserved" orig.Emu.out res.Emu.out;
      Alcotest.(check bool) "has counters" true (List.length prof.Qpt2.counters > 10);
      (* edge counters must be consistent: every counter is bounded by the
         dynamic instruction count *)
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "counter sane" true (v >= 0 && v <= res.Emu.insns))
        (Qpt2.counts prof st.Emu.mem))
    [ Eel_workload.Gen.Gcc; Eel_workload.Gen.Sunpro ]

let test_qpt2_sums_match_ground_truth () =
  (* the sum of a conditional branch's out-edge counters equals the number
     of times the branch executed (ground truth from the original run) *)
  let exe = workload ~routines:8 ~seed:5 () in
  let branch_execs = Hashtbl.create 64 in
  let hook = function
    | Emu.Ev_exec { pc; word } -> (
        match Insn.decode word with
        | Insn.Bicc _ ->
            Hashtbl.replace branch_execs pc
              (1 + Option.value ~default:0 (Hashtbl.find_opt branch_execs pc))
        | _ -> ())
    | _ -> ()
  in
  let _, _ = Emu.run_exe ~hook exe in
  let total_branch_execs = Hashtbl.fold (fun _ v acc -> acc + v) branch_execs 0 in
  let prof = Qpt2.instrument mach exe in
  let _, st = Emu.run_exe prof.Qpt2.edited in
  let counted =
    List.fold_left (fun acc (_, v) -> acc + v) 0 (Qpt2.counts prof st.Emu.mem)
  in
  (* every counted edge execution corresponds to a branch execution; some
     branches' edges are uneditable (skipped), so counted <= executed, and
     with few skips they should be close *)
  Alcotest.(check bool) "counted <= branch execs" true (counted <= total_branch_execs);
  (* some branches' edges are uneditable (e.g. taken edges leaving the
     routine) and are skipped, so counted < executed; the gap must be
     modest and explained by skipped edges *)
  Alcotest.(check bool) "skips explain the gap" true
    (prof.Qpt2.skipped_uneditable > 0 || counted = total_branch_execs);
  Alcotest.(check bool) "counted within 30% of ground truth" true
    (float_of_int counted >= 0.7 *. float_of_int total_branch_execs)

(* ------------------------------------------------------------------ *)
(* oldqpt                                                              *)
(* ------------------------------------------------------------------ *)

let test_oldqpt_correctness () =
  let exe = workload ~routines:12 ~seed:9 () in
  let orig, _ = Emu.run_exe exe in
  let res = Oldqpt.instrument exe in
  let out, _ = Emu.run_exe res.Oldqpt.edited in
  Alcotest.(check string) "output preserved" orig.Emu.out out.Emu.out

let test_oldqpt_counts () =
  let exe = workload ~routines:10 ~seed:2 () in
  (* ground truth: per-branch execution counts from the original run *)
  let branch_execs = Hashtbl.create 64 in
  let hook = function
    | Emu.Ev_exec { pc; word } -> (
        match Insn.decode word with
        | Insn.Bicc _ ->
            Hashtbl.replace branch_execs pc
              (1 + Option.value ~default:0 (Hashtbl.find_opt branch_execs pc))
        | _ -> ())
    | _ -> ()
  in
  ignore (Emu.run_exe ~hook exe);
  let res = Oldqpt.instrument exe in
  let _, st = Emu.run_exe res.Oldqpt.edited in
  List.iter
    (fun (caddr, branch_pc) ->
      let counted = Eel_util.Bytebuf.get32_be st.Emu.mem caddr in
      let truth = Option.value ~default:0 (Hashtbl.find_opt branch_execs branch_pc) in
      Alcotest.(check int)
        (Printf.sprintf "branch at 0x%x" branch_pc)
        truth counted)
    res.Oldqpt.counters

let test_oldqpt_vs_qpt2_blocks () =
  (* E4: EEL CFGs contain more blocks than old-style flat blocks *)
  let exe = workload ~routines:12 ~seed:4 () in
  let old = Oldqpt.instrument exe in
  let t = E.read_contents mach exe in
  let stats = E.cfg_stats t in
  Alcotest.(check bool) "EEL blocks > old blocks" true
    (stats.Eel.Cfg.s_blocks > old.Oldqpt.blocks_seen)

(* ------------------------------------------------------------------ *)
(* Active Memory                                                       *)
(* ------------------------------------------------------------------ *)

let test_amemory_counts () =
  let exe = assemble (Eel_workload.Gen.memory_bound ~iters:4 ~size_words:32 ()) in
  let orig, _ = Emu.run_exe exe in
  let am = Amemory.instrument mach exe in
  let res, st = Emu.run_exe am.Amemory.edited in
  Alcotest.(check string) "output preserved" orig.Emu.out res.Emu.out;
  let refs = Amemory.refs am st.Emu.mem in
  let misses = Amemory.misses am st.Emu.mem in
  (* the program does 2 refs per word per pass: 4 * 32 * 2 = 256 *)
  Alcotest.(check int) "all references tested" 256 refs;
  (* 32 contiguous words = 8 lines of 16 bytes: cold misses only *)
  Alcotest.(check int) "cold misses" 8 misses;
  (* slowdown through instrumentation is real but bounded *)
  Alcotest.(check bool) "instrumented sites" true (am.Amemory.instrumented > 0);
  Alcotest.(check bool) "edited is slower" true (res.Emu.insns > orig.Emu.insns)

let test_amemory_cc_live () =
  (* a load between the compare and the branch: condition codes are live,
     forcing the branch-free test sequence *)
  let exe =
    assemble
      {|
main:   set v, %l1
        mov 3, %l0
Lloop:  subcc %l0, 1, %l0
        ld [%l1], %l2
        bne Lloop
        nop
        mov %l2, %o0
        ta 2
        mov 0, %o0
        ta 1
        .data
        .align 4
v:      .word 17
|}
  in
  let orig, _ = Emu.run_exe exe in
  let am = Amemory.instrument mach exe in
  Alcotest.(check bool) "cc-live site detected" true (am.Amemory.cc_live_sites > 0);
  let res, st = Emu.run_exe am.Amemory.edited in
  Alcotest.(check string) "cc-preserving sequence is correct" orig.Emu.out
    res.Emu.out;
  Alcotest.(check int) "3 refs" 3 (Amemory.refs am st.Emu.mem);
  Alcotest.(check int) "1 miss" 1 (Amemory.misses am st.Emu.mem)

let test_amemory_workload () =
  let exe = workload ~routines:10 ~seed:6 () in
  let orig, _ = Emu.run_exe exe in
  let am = Amemory.instrument mach exe in
  let res, st = Emu.run_exe am.Amemory.edited in
  Alcotest.(check string) "output preserved" orig.Emu.out res.Emu.out;
  let refs = Amemory.refs am st.Emu.mem in
  let misses = Amemory.misses am st.Emu.mem in
  Alcotest.(check bool) "misses <= refs" true (misses <= refs);
  Alcotest.(check bool) "some refs" true (refs > 0)

(* ------------------------------------------------------------------ *)
(* SFI                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sfi_transparent () =
  (* a program whose stores already sit inside the sandbox behaves
     identically *)
  let exe =
    assemble
      {|
main:   set buf, %l0
        mov 77, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
        mov 0, %o0
        ta 1
        .data
        .align 4
buf:    .word 0
|}
  in
  let orig, _ = Emu.run_exe exe in
  (* sandbox = [0x10000, 0x20000): covers .data *)
  let sb = Sfi.instrument mach exe ~seg_base:0x10000 ~seg_size:0x10000 in
  Alcotest.(check bool) "guarded a store" true (sb.Sfi.guarded > 0);
  let res, _ = Emu.run_exe sb.Sfi.edited in
  Alcotest.(check string) "in-segment stores unchanged" orig.Emu.out res.Emu.out

let test_sfi_contains_wild_store () =
  (* a store far outside the sandbox is clamped into it *)
  let exe =
    assemble
      {|
main:   set 0x300000, %l0       ! wild address
        mov 99, %l1
        st %l1, [%l0]
        mov 0, %o0
        ta 1
|}
  in
  let sb = Sfi.instrument mach exe ~seg_base:0x10000 ~seg_size:0x10000 in
  let _, st = Emu.run_exe sb.Sfi.edited in
  (* 0x300000 & 0xFFFF | 0x10000 = 0x10000 *)
  Alcotest.(check int) "value landed inside the sandbox" 99
    (Eel_util.Bytebuf.get32_be st.Emu.mem 0x10000);
  Alcotest.(check int) "wild address untouched" 0
    (Eel_util.Bytebuf.get32_be st.Emu.mem 0x300000)

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_tracer_exact () =
  let exe =
    assemble
      {|
main:   set buf, %l0
        mov 1, %l1
        st %l1, [%l0]
        st %l1, [%l0 + 8]
        ld [%l0 + 4], %l2
        mov 0, %o0
        ta 1
        .data
        .align 4
buf:    .word 0, 0, 0
|}
  in
  (* ground truth: the emulator's memory events on the original program *)
  let truth = ref [] in
  let hook = function
    | Emu.Ev_load { addr; _ } | Emu.Ev_store { addr; _ } -> truth := addr :: !truth
    | _ -> ()
  in
  ignore (Emu.run_exe ~hook exe);
  let truth = List.rev !truth in
  let tr = Tracer.instrument mach exe in
  let _, st = Emu.run_exe tr.Tracer.edited in
  let recorded = Tracer.trace tr st.Emu.mem in
  (* the trace also contains the tracer's own bookkeeping loads? no: the
     snippet traces only the program's effective addresses *)
  Alcotest.(check (list int)) "exact address trace" truth recorded

let test_tracer_workload () =
  let exe = workload ~routines:8 ~seed:8 () in
  let orig, _ = Emu.run_exe exe in
  let truth = ref 0 in
  let hook = function
    | Emu.Ev_load _ | Emu.Ev_store _ -> incr truth
    | _ -> ()
  in
  ignore (Emu.run_exe ~hook exe);
  let tr = Tracer.instrument mach exe in
  let res, st = Emu.run_exe tr.Tracer.edited in
  Alcotest.(check string) "output preserved" orig.Emu.out res.Emu.out;
  let recorded = List.length (Tracer.trace tr st.Emu.mem) in
  (* uneditable sites (loads in call delay slots) are skipped, so the trace
     can undercount slightly; the edited program also performs its own
     bookkeeping references which must NOT appear *)
  Alcotest.(check bool) "trace close to ground truth" true
    (recorded <= !truth && float_of_int recorded >= 0.85 *. float_of_int !truth)

let main_suites =
    [
      ( "qpt2",
        [
          Alcotest.test_case "loop edges" `Quick test_qpt2_loop;
          Alcotest.test_case "workload" `Quick test_qpt2_workload;
          Alcotest.test_case "ground truth" `Quick test_qpt2_sums_match_ground_truth;
        ] );
      ( "oldqpt",
        [
          Alcotest.test_case "correctness" `Quick test_oldqpt_correctness;
          Alcotest.test_case "branch counts" `Quick test_oldqpt_counts;
          Alcotest.test_case "block counts vs EEL" `Quick test_oldqpt_vs_qpt2_blocks;
        ] );
      ( "amemory",
        [
          Alcotest.test_case "counts" `Quick test_amemory_counts;
          Alcotest.test_case "cc-live sequence" `Quick test_amemory_cc_live;
          Alcotest.test_case "workload" `Quick test_amemory_workload;
        ] );
      ( "sfi",
        [
          Alcotest.test_case "transparent" `Quick test_sfi_transparent;
          Alcotest.test_case "contains wild store" `Quick test_sfi_contains_wild_store;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "exact trace" `Quick test_tracer_exact;
          Alcotest.test_case "workload" `Quick test_tracer_workload;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Optimal edge profiling (Ball-Larus spanning-tree placement)         *)
(* ------------------------------------------------------------------ *)

module Optprof = Eel_tools.Optprof
module C = Eel.Cfg

(* full instrumentation as ground truth: optimal must reconstruct the same
   count for every editable edge, from strictly fewer counters *)
let check_optimal_against_full exe =
  let orig, _ = Emu.run_exe exe in
  (* ground truth: one counter per editable edge (plain qpt2) *)
  let full = Qpt2.instrument mach exe in
  let _, st_full = Emu.run_exe full.Qpt2.edited in
  let full_counts = Hashtbl.create 64 in
  List.iter
    (fun ((c : Qpt2.counter), v) ->
      Hashtbl.replace full_counts (c.Qpt2.c_routine, c.Qpt2.c_edge) v)
    (Qpt2.counts full st_full.Emu.mem);
  (* optimal placement *)
  let opt = Optprof.instrument mach exe in
  let res, st = Emu.run_exe opt.Optprof.edited in
  Alcotest.(check string) "output preserved" orig.Emu.out res.Emu.out;
  (* optimal placement profiles EVERY edge while instrumenting well under
     half of the editable ones (tree edges are reconstructed) *)
  let editable_edges =
    List.fold_left
      (fun acc (rp : Optprof.routine_prof) ->
        acc
        + List.length
            (List.filter
               (fun (re : Optprof.redge) ->
                 match re.Optprof.re_cfg with
                 | Some e -> e.C.e_editable
                 | None -> false)
               rp.Optprof.rp_edges))
      0 opt.Optprof.routines
  in
  Alcotest.(check bool)
    (Printf.sprintf "counters well below editable edges (%d vs %d)"
       opt.Optprof.n_counters editable_edges)
    true
    (2 * opt.Optprof.n_counters < editable_edges);
  (* reconstructed profile matches ground truth on every edge qpt2
     counted (edges out of multi-successor blocks) *)
  let compared = ref 0 in
  List.iter
    (fun (rname, edges) ->
      List.iter
        (fun ((e : C.edge), v) ->
          match Hashtbl.find_opt full_counts (rname, e.C.eid) with
          | Some truth ->
              incr compared;
              Alcotest.(check int)
                (Printf.sprintf "%s edge %d" rname e.C.eid)
                truth v
          | None -> ())
        edges)
    (Optprof.edge_counts opt st.Emu.mem);
  Alcotest.(check bool) "compared many edges" true (!compared > 10)

let test_optprof_loop () =
  (* a loop: the hot back edge must carry no counter *)
  let exe =
    assemble
      {|
main:   mov 50, %l0
Lloop:  subcc %l0, 1, %l0
        bne Lloop
        nop
        mov 0, %o0
        ta 1
|}
  in
  let opt = Optprof.instrument mach exe in
  let _, st = Emu.run_exe opt.Optprof.edited in
  let profile = List.assoc "main" (Optprof.edge_counts opt st.Emu.mem) in
  (* the taken (back) edge executed 49 times, the exit edge once *)
  let counts = List.map snd profile in
  Alcotest.(check bool) "back edge count recovered" true (List.mem 49 counts);
  Alcotest.(check bool) "exit edge count recovered" true (List.mem 1 counts);
  (* fewer counters than a full edge profile would use *)
  Alcotest.(check bool) "at most 2 counters" true (opt.Optprof.n_counters <= 2)

let test_optprof_workloads () =
  check_optimal_against_full (workload ~routines:10 ~seed:14 ());
  check_optimal_against_full (workload ~style:Eel_workload.Gen.Sunpro ~routines:10 ~seed:15 ())

let test_optprof_under_contract_oracle () =
  (* the sparse Ball-Larus edit holds up under the equivalence oracle: the
     edited image is event-equivalent modulo the declared counter span, and
     the reconstruction check validates against the ground-truth profile *)
  let exe = workload ~routines:8 ~seed:21 () in
  let ap =
    match Eel_tools.Toolbox.apply "optprof" mach exe with
    | Ok ap -> ap
    | Error m -> Alcotest.failf "toolbox: %s" m
  in
  match
    Eel_diffexec.Diffexec.verify_edit ~norm_b:ap.Eel_tools.Toolbox.ap_norm_b
      ~block_of:ap.Eel_tools.Toolbox.ap_block_of
      ~contract:ap.Eel_tools.Toolbox.ap_contract exe
      ap.Eel_tools.Toolbox.ap_edited
  with
  | Error e ->
      Alcotest.failf "oracle: %s" (Eel_robust.Diag.error_message e)
  | Ok er ->
      Alcotest.(check string)
        "verdict" "equivalent"
        (Eel_diffexec.Diffexec.verdict_name
           er.Eel_diffexec.Diffexec.er_report.Eel_diffexec.Diffexec.rp_verdict);
      Alcotest.(check bool) "counter traffic masked" true
        (er.Eel_diffexec.Diffexec.er_masked > 0)

let () =
  Alcotest.run "tools"
    (main_suites
    @ [
        ( "optprof",
          [
            Alcotest.test_case "loop placement" `Quick test_optprof_loop;
            Alcotest.test_case "matches full profile" `Quick
              test_optprof_workloads;
            Alcotest.test_case "holds under the contract oracle" `Quick
              test_optprof_under_contract_oracle;
          ] );
      ])
