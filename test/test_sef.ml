(* Tests for the SEF executable format: serialization round trips, section
   and symbol access, stripping, patching. *)

module Sef = Eel_sef.Sef

let mk_section name kind vaddr contents =
  {
    Sef.sec_name = name;
    sec_kind = kind;
    vaddr;
    size = Bytes.length contents;
    contents;
  }

let sample () =
  let text = Bytes.make 16 '\000' in
  Eel_util.Bytebuf.set32_be text 0 0x01000000;
  Eel_util.Bytebuf.set32_be text 4 0x40000002;
  let data = Bytes.of_string "hello world!" in
  Sef.create ~entry:0x10000
    ~sections:
      [
        mk_section ".text" Sef.Text 0x10000 text;
        mk_section ".data" Sef.Data 0x12000 data;
        { Sef.sec_name = ".bss"; sec_kind = Sef.Bss; vaddr = 0x13000; size = 64; contents = Bytes.empty };
      ]
    ~symbols:
      [
        { Sef.sym_name = "main"; value = 0x10000; sym_size = 8; kind = Sef.Func; global = true };
        { Sef.sym_name = "msg"; value = 0x12000; sym_size = 12; kind = Sef.Object; global = false };
        { Sef.sym_name = "Ltmp"; value = 0x10004; sym_size = 0; kind = Sef.Label; global = false };
      ]

let test_roundtrip () =
  let t = sample () in
  let t' = Sef.of_string (Sef.to_string t) in
  Alcotest.(check int) "entry" t.Sef.entry t'.Sef.entry;
  Alcotest.(check int) "sections" 3 (List.length t'.Sef.sections);
  Alcotest.(check int) "symbols" 3 (List.length t'.Sef.symbols);
  let txt = Option.get (Sef.find_section t' ".text") in
  Alcotest.(check int) "text word" 0x01000000 (Eel_util.Bytebuf.get32_be txt.Sef.contents 0);
  let bss = Option.get (Sef.find_section t' ".bss") in
  Alcotest.(check int) "bss size preserved" 64 bss.Sef.size;
  Alcotest.(check int) "bss stores no bytes" 0 (Bytes.length bss.Sef.contents)

let test_file_roundtrip () =
  let t = sample () in
  let path = Filename.temp_file "eel_test" ".sef" in
  Sef.write_file path t;
  let t' = Sef.read_file path in
  Sys.remove path;
  Alcotest.(check string) "identical bytes" (Sef.to_string t) (Sef.to_string t')

let test_bad_magic () =
  (* the exception shim raises the typed error… *)
  (try
     ignore (Sef.of_string "XXXX garbage");
     Alcotest.fail "bad magic accepted"
   with Eel_robust.Diag.Error (Eel_robust.Diag.Sef_error { loc; _ }) ->
     Alcotest.(check (option int)) "error at offset 0" (Some 0) loc.Eel_robust.Diag.l_offset);
  (* …and the Result API returns it as a value *)
  match Sef.load "XXXX garbage" with
  | Ok _ -> Alcotest.fail "bad magic accepted by load"
  | Error (Eel_robust.Diag.Sef_error _) -> ()
  | Error e -> Alcotest.fail (Eel_robust.Diag.error_message e)

let test_fetch32 () =
  let t = sample () in
  Alcotest.(check (option int)) "fetch text" (Some 0x40000002) (Sef.fetch32 t 0x10004);
  Alcotest.(check (option int)) "fetch out of range" None (Sef.fetch32 t 0x50000);
  Alcotest.(check (option int)) "no fetch from bss" None (Sef.fetch32 t 0x13000);
  (* fetch across the end of a section fails *)
  Alcotest.(check (option int)) "fetch at section end" None (Sef.fetch32 t 0x1000E)

let test_patch32 () =
  let t = sample () in
  Alcotest.(check bool) "patch ok" true (Sef.patch32 t 0x10008 0xDEADBEEF);
  Alcotest.(check (option int)) "patched" (Some 0xDEADBEEF) (Sef.fetch32 t 0x10008);
  Alcotest.(check bool) "patch outside fails" false (Sef.patch32 t 0x90000 0)

let test_section_at () =
  let t = sample () in
  Alcotest.(check (option string)) "text" (Some ".text")
    (Option.map (fun s -> s.Sef.sec_name) (Sef.section_at t 0x1000F));
  Alcotest.(check (option string)) "bss" (Some ".bss")
    (Option.map (fun s -> s.Sef.sec_name) (Sef.section_at t 0x1303F));
  Alcotest.(check (option string)) "hole" None
    (Option.map (fun s -> s.Sef.sec_name) (Sef.section_at t 0x11000))

let test_strip () =
  let t = Sef.strip (sample ()) in
  Alcotest.(check int) "no symbols" 0 (List.length t.Sef.symbols);
  Alcotest.(check int) "sections intact" 3 (List.length t.Sef.sections)

let test_sizes () =
  let t = sample () in
  Alcotest.(check int) "image size counts text+data" 28 (Sef.image_size t);
  Alcotest.(check int) "high addr includes bss" (0x13000 + 64) (Sef.high_addr t)

(* Property: serialization round-trips on random small executables. *)
let arb_sef =
  let open QCheck.Gen in
  let section i =
    let* size = int_range 4 64 in
    let* kind = oneofl [ Sef.Text; Sef.Data; Sef.Bss ] in
    let* fill = int_bound 255 in
    return
      {
        Sef.sec_name = Printf.sprintf ".s%d" i;
        sec_kind = kind;
        vaddr = 0x1000 * (i + 1);
        size;
        contents = (if kind = Sef.Bss then Bytes.empty else Bytes.make size (Char.chr fill));
      }
  in
  let gen =
    let* nsec = int_range 1 4 in
    let* sections =
      flatten_l (List.init nsec section)
    in
    let* nsym = int_range 0 6 in
    let* symbols =
      flatten_l
        (List.init nsym (fun i ->
             let* kind = oneofl [ Sef.Func; Sef.Object; Sef.Label; Sef.Debug ] in
             let* global = bool in
             return
               {
                 Sef.sym_name = Printf.sprintf "sym%d" i;
                 value = 0x1000 + (i * 4);
                 sym_size = i;
                 kind;
                 global;
               }))
    in
    return (Sef.create ~entry:0x1000 ~sections ~symbols)
  in
  QCheck.make gen

let prop_roundtrip =
  QCheck.Test.make ~name:"SEF serialization roundtrip" ~count:200 arb_sef (fun t ->
      Sef.to_string (Sef.of_string (Sef.to_string t)) = Sef.to_string t)

let () =
  Alcotest.run "sef"
    [
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
        ] );
      ( "access",
        [
          Alcotest.test_case "fetch32" `Quick test_fetch32;
          Alcotest.test_case "patch32" `Quick test_patch32;
          Alcotest.test_case "section_at" `Quick test_section_at;
          Alcotest.test_case "strip" `Quick test_strip;
          Alcotest.test_case "sizes" `Quick test_sizes;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
