(* Unit and property tests for the utility layer: 32-bit word arithmetic and
   binary readers/writers. *)

open Eel_util

let check_int = Alcotest.(check int)

let test_mask () =
  check_int "mask keeps 32 bits" 0xFFFFFFFF (Word.mask (-1));
  check_int "mask is idempotent" 0x1234 (Word.mask 0x1234);
  check_int "mask wraps overflow" 0 (Word.mask 0x1_0000_0000)

let test_sext () =
  check_int "sext 13 of 0x1FFF" (-1) (Word.sext 13 0x1FFF);
  check_int "sext 13 of 0xFFF" 0xFFF (Word.sext 13 0xFFF);
  check_int "sext 22 negative" (-2) (Word.sext 22 0x3FFFFE);
  check_int "sext 32 of high bit" (-2147483648) (Word.sext 32 0x80000000)

let test_bits () =
  check_int "bits 30:31" 2 (Word.bits ~lo:30 ~hi:31 0x80000000);
  check_int "bits 0:4" 0x15 (Word.bits ~lo:0 ~hi:4 0x35);
  check_int "set_bits roundtrip" 0xF0
    (Word.set_bits ~lo:4 ~hi:7 0 0xF);
  check_int "set_bits preserves others" 0x10F
    (Word.set_bits ~lo:4 ~hi:7 0x10F 0x0 lor 0x0 lor Word.set_bits ~lo:4 ~hi:7 0x10F 0 land 0xFFF)

let test_arith () =
  check_int "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  check_int "sll" 0x80000000 (Word.sll 1 31);
  check_int "sll wraps shift amount" 2 (Word.sll 1 33);
  check_int "srl" 1 (Word.srl 0x80000000 31);
  check_int "sra sign" 0xFFFFFFFF (Word.sra 0x80000000 31);
  check_int "signed of max" (-1) (Word.signed 0xFFFFFFFF)

let test_fits () =
  Alcotest.(check bool) "4095 fits simm13" true (Word.fits_signed 13 4095);
  Alcotest.(check bool) "4096 does not fit" false (Word.fits_signed 13 4096);
  Alcotest.(check bool) "-4096 fits" true (Word.fits_signed 13 (-4096));
  Alcotest.(check bool) "-4097 does not fit" false (Word.fits_signed 13 (-4097))

let test_bytebuf_roundtrip () =
  let buf = Buffer.create 64 in
  Bytebuf.w8 buf 0xAB;
  Bytebuf.w16 buf 0x1234;
  Bytebuf.w32 buf 0xDEADBEEF;
  Bytebuf.wstr buf "hello";
  let r = Bytebuf.reader (Buffer.contents buf) in
  check_int "w8/r8" 0xAB (Bytebuf.r8 r);
  check_int "w16/r16" 0x1234 (Bytebuf.r16 r);
  check_int "w32/r32" 0xDEADBEEF (Bytebuf.r32 r);
  Alcotest.(check string) "wstr/rstr" "hello" (Bytebuf.rstr r);
  Alcotest.(check bool) "eof" true (Bytebuf.eof r)

let test_bytebuf_be () =
  let b = Bytes.make 8 '\000' in
  Bytebuf.set32_be b 0 0x01020304;
  check_int "byte order" 1 (Char.code (Bytes.get b 0));
  check_int "get32_be" 0x01020304 (Bytebuf.get32_be b 0);
  Bytebuf.set32_be b 4 0xFFFFFFFF;
  check_int "all ones" 0xFFFFFFFF (Bytebuf.get32_be b 4)

let test_truncated_reads () =
  let r = Bytebuf.reader "ab" in
  let _ = Bytebuf.r16 r in
  try
    ignore (Bytebuf.r8 r);
    Alcotest.fail "r8 past end succeeded"
  with Bytebuf.Truncated { context; offset; wanted; available } ->
    Alcotest.(check string) "context" "r8" context;
    Alcotest.(check int) "offset" 2 offset;
    Alcotest.(check int) "wanted" 1 wanted;
    Alcotest.(check int) "available" 0 available

(* ---- the chunked domain pool (ISSUE 5) ---- *)

let test_pool_order () =
  let items = Array.init 37 (fun i -> i) in
  let serial = Array.map (fun i -> i * i) items in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d matches serial map" jobs)
        serial
        (Pool.map ~jobs (fun i -> i * i) items))
    [ 1; 2; 3; 4; 8 ]

let test_pool_more_jobs_than_items () =
  Alcotest.(check (list int))
    "3 items under 16 jobs" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:16 (fun i -> 2 * i) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.map_list ~jobs:4 succ []);
  Alcotest.(check (array int))
    "single item" [| 9 |]
    (Pool.map ~jobs:4 (fun i -> i + 1) [| 8 |])

let test_pool_env_jobs () =
  Unix.putenv "EEL_JOBS" "4";
  Alcotest.(check (option int)) "EEL_JOBS=4" (Some 4) (Pool.env_jobs ());
  Unix.putenv "EEL_JOBS" "0";
  Alcotest.(check (option int)) "0 is rejected" None (Pool.env_jobs ());
  Unix.putenv "EEL_JOBS" "banana";
  Alcotest.(check (option int)) "garbage is rejected" None (Pool.env_jobs ());
  Unix.putenv "EEL_JOBS" "999";
  Alcotest.(check (option int)) "over the cap" None (Pool.env_jobs ());
  Unix.putenv "EEL_JOBS" ""

let test_pool_cgroup_parsers () =
  (* cgroup v2 cpu.max: "QUOTA PERIOD" or "max PERIOD" *)
  Alcotest.(check (option int)) "2 cores" (Some 2)
    (Pool.parse_cpu_max "200000 100000");
  Alcotest.(check (option int)) "fractional rounds up" (Some 1)
    (Pool.parse_cpu_max "25000 100000");
  Alcotest.(check (option int)) "2.5 cores rounds up" (Some 3)
    (Pool.parse_cpu_max "250000 100000");
  Alcotest.(check (option int)) "unlimited" None
    (Pool.parse_cpu_max "max 100000");
  Alcotest.(check (option int)) "trailing newline" (Some 1)
    (Pool.parse_cpu_max "100000 100000\n");
  Alcotest.(check (option int)) "garbage" None (Pool.parse_cpu_max "banana");
  Alcotest.(check (option int)) "empty" None (Pool.parse_cpu_max "");
  (* cgroup v1 cfs_quota_us / cfs_period_us: -1 quota = unlimited *)
  Alcotest.(check (option int)) "v1 4 cores" (Some 4)
    (Pool.parse_cfs ~quota:"400000" ~period:"100000");
  Alcotest.(check (option int)) "v1 unlimited" None
    (Pool.parse_cfs ~quota:"-1" ~period:"100000");
  Alcotest.(check (option int)) "v1 zero period" None
    (Pool.parse_cfs ~quota:"100000" ~period:"0");
  (* the clamped recommendation is sane whatever this host's cgroup says *)
  let n = Pool.recommended_domain_count () in
  Alcotest.(check bool) "recommendation >= 1" true (n >= 1);
  Alcotest.(check bool) "recommendation <= runtime's" true
    (n <= max 1 (Domain.recommended_domain_count ()))

let test_pool_metrics_merge () =
  (* worker domains bump domain-local counters; the join hook must absorb
     every worker's delta into the caller's registry, summing to exactly
     the serial total *)
  let module M = Eel_obs.Metrics in
  let name = "pool.test.counter" in
  let before =
    match M.find name with Some (M.Int n) -> n | _ -> 0
  in
  let items = Array.init 20 (fun i -> i + 1) in
  let out =
    Pool.map ~jobs:4
      (fun i ->
        M.incr ~by:i (M.counter name);
        i)
      items
  in
  Alcotest.(check (array int)) "results ordered" items out;
  let expect = before + Array.fold_left ( + ) 0 items in
  (match M.find name with
  | Some (M.Int n) -> check_int "counter merged across domains" expect n
  | _ -> Alcotest.fail "counter missing after join")

let test_pool_exception_propagates () =
  match Pool.map ~jobs:4 (fun i -> if i = 13 then failwith "boom" else i)
          (Array.init 20 (fun i -> i))
  with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Failure m -> Alcotest.(check string) "worker failure" "boom" m

(* Property: sext inverts zext for in-range values. *)
let prop_sext_zext =
  QCheck.Test.make ~name:"sext/zext roundtrip on signed 13-bit values"
    QCheck.(int_range (-4096) 4095)
    (fun v -> Word.sext 13 (Word.zext 13 v) = v)

let prop_add_assoc =
  QCheck.Test.make ~name:"32-bit add is associative"
    QCheck.(triple (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b, c) -> Word.add a (Word.add b c) = Word.add (Word.add a b) c)

let prop_bits_set_bits =
  QCheck.Test.make ~name:"bits inverts set_bits"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 31))
    (fun (w, v) ->
      let v = v land 0xF in
      Word.bits ~lo:8 ~hi:11 (Word.set_bits ~lo:8 ~hi:11 w v) = v)

let () =
  Alcotest.run "util"
    [
      ( "word",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "sext" `Quick test_sext;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "fits_signed" `Quick test_fits;
        ] );
      ( "bytebuf",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytebuf_roundtrip;
          Alcotest.test_case "big-endian words" `Quick test_bytebuf_be;
          Alcotest.test_case "truncation" `Quick test_truncated_reads;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordered results" `Quick test_pool_order;
          Alcotest.test_case "more jobs than items" `Quick
            test_pool_more_jobs_than_items;
          Alcotest.test_case "EEL_JOBS parsing" `Quick test_pool_env_jobs;
          Alcotest.test_case "cgroup quota parsing" `Quick
            test_pool_cgroup_parsers;
          Alcotest.test_case "metrics merge at join" `Quick
            test_pool_metrics_merge;
          Alcotest.test_case "worker exception propagates" `Quick
            test_pool_exception_propagates;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sext_zext; prop_add_assoc; prop_bits_set_bits ] );
    ]
