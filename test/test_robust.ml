(* Robustness tests: the never-crash contract of the load -> CFG -> edit
   front end (paper §3.1: EEL must survive stripped binaries, misleading
   symbol tables, and data in the text segment — here extended to actively
   hostile containers).

   Every mutation class must produce either a successful load or a
   structured [Diag.error]; an escaped exception of any other kind fails
   the test. Strict mode must reject what non-strict mode merely warns
   about, and the emulator must [Fault] — never [Invalid_argument] or an
   aborting allocation — on images that lie about their geometry. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Mutate = Eel_mutate.Mutate
module E = Eel.Executable
module C = Eel.Cfg
module Emu = Eel_emu.Emu
open Eel_sparc

let mach = Mach.mach

let base ?(seed = 42) ?(routines = 8) () =
  Eel_workload.Gen.assemble_program
    { Eel_workload.Gen.default with seed; routines }

(* The pipeline under test, mirroring bin/eel_fuzz.ml. *)
type outcome = Loaded of Diag.sink | Rejected of Diag.error

let pipeline ?(strict = false) bytes =
  let diag = Diag.create ~strict () in
  match Sef.load ~diag bytes with
  | Error e -> Rejected e
  | Ok exe -> (
      let budget = Diag.budget ~stage:"test" (8 * 1024 * 1024) in
      match E.open_exe ~diag ~budget mach exe with
      | Error e -> Rejected e
      | Ok t -> (
          match
            Diag.guard (fun () ->
                ignore (E.jump_stats t);
                ignore (E.to_edited_sef t ()))
          with
          | Ok () -> Loaded diag
          | Error e -> Rejected e))

(* [pipeline] already confines failures to [Rejected]; anything else
   propagates out of the test case and fails it. *)
let survives bytes =
  match pipeline bytes with Loaded _ -> `Ok | Rejected _ -> `Rejected

(* ------------------------------------------------------------------ *)
(* One test per mutation class                                         *)
(* ------------------------------------------------------------------ *)

let mutant kind seed =
  let r = Mutate.rng seed in
  Mutate.apply r kind (base ())

let expect_outcome kind seeds expected =
  List.iter
    (fun seed ->
      let got = survives (mutant kind seed) in
      match expected with
      | `Any -> ()
      | e ->
          if got <> e then
            Alcotest.failf "%s (seed %d): expected %s, got %s" (Mutate.name kind)
              seed
              (match e with `Ok -> "ok" | `Rejected -> "rejected" | `Any -> "any")
              (match got with `Ok -> "ok" | `Rejected -> "rejected"))
    seeds

let seeds = [ 1; 2; 3; 4; 5 ]

let test_truncate_header () = expect_outcome Mutate.Truncate_header seeds `Rejected

let test_truncate_tail () = expect_outcome Mutate.Truncate_tail seeds `Rejected

let test_bad_magic () = expect_outcome Mutate.Bad_magic seeds `Rejected

let test_bogus_section_kind () =
  expect_outcome Mutate.Bogus_section_kind seeds `Rejected

let test_giant_section_size () =
  expect_outcome Mutate.Giant_section_size seeds `Rejected

let test_empty_text () = expect_outcome Mutate.Empty_text seeds `Rejected

let test_huge_vaddr () = expect_outcome Mutate.Huge_vaddr seeds `Rejected

let test_bit_flip_text () =
  (* data-vs-code degradation: bit flips may corrupt instructions but the
     front end carries on (possibly rejecting, never crashing) *)
  expect_outcome Mutate.Bit_flip_text seeds `Any

let test_overlapping_sections () =
  expect_outcome Mutate.Overlapping_sections seeds `Any

let test_shuffled_sections () = expect_outcome Mutate.Shuffled_sections seeds `Ok

let test_bad_entry () = expect_outcome Mutate.Bad_entry seeds `Rejected

let test_stripped () = expect_outcome Mutate.Stripped seeds `Ok

let test_duplicate_symbols () = expect_outcome Mutate.Duplicate_symbols seeds `Ok

let test_debug_pollution () = expect_outcome Mutate.Debug_pollution seeds `Ok

let test_dangling_symbol () =
  (* loads, but the dangling address must surface as a warning *)
  List.iter
    (fun seed ->
      match pipeline (mutant Mutate.Dangling_symbol seed) with
      | Rejected e -> Alcotest.failf "rejected: %s" (Diag.error_message e)
      | Loaded diag ->
          Alcotest.(check bool)
            "dangling symbol warned" true
            (Diag.warnings diag > 0))
    seeds

let test_misaligned_symbol () =
  List.iter
    (fun seed ->
      match pipeline (mutant Mutate.Misaligned_symbol seed) with
      | Rejected e -> Alcotest.failf "rejected: %s" (Diag.error_message e)
      | Loaded diag ->
          Alcotest.(check bool)
            "misaligned symbol warned" true
            (Diag.warnings diag > 0))
    seeds

(* ------------------------------------------------------------------ *)
(* Structured diagnostics                                              *)
(* ------------------------------------------------------------------ *)

let test_strict_promotion () =
  (* a sink in strict mode records warnings as errors… *)
  let s = Diag.create ~strict:true () in
  Diag.emit s Diag.Warn ~source:"test" "suspicious but salvageable";
  Alcotest.(check int) "promoted to error" 1 (Diag.errors s);
  Alcotest.(check int) "no warning recorded" 0 (Diag.warnings s);
  (* …so strict load refuses an input non-strict load accepts *)
  let bytes = mutant Mutate.Dangling_symbol 1 in
  (match Sef.load bytes with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "non-strict load failed: %s" (Diag.error_message e));
  match Sef.load ~strict:true bytes with
  | Ok _ -> Alcotest.fail "strict load accepted a dangling symbol"
  | Error (Diag.Sef_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

let test_truncation_at_sef_boundary () =
  (* Bytebuf.Truncated from deep inside the reader must surface as a typed
     Sef_error carrying the offset, not as a raw exception *)
  let whole = Sef.to_string (base ()) in
  let cut = String.sub whole 0 (String.length whole / 2) in
  match Sef.load cut with
  | Ok _ -> Alcotest.fail "truncated input accepted"
  | Error (Diag.Sef_error { loc; _ }) ->
      Alcotest.(check bool) "offset recorded" true (loc.Diag.l_offset <> None)
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

let test_validation_rejects_lying_sections () =
  (* in-memory executables (never serialized) are validated by open_exe *)
  let lying =
    Sef.create ~entry:0x1000
      ~sections:
        [
          {
            Sef.sec_name = ".text";
            sec_kind = Sef.Text;
            vaddr = 0x1000;
            size = 64;
            contents = Bytes.make 8 '\000' (* 8 <> 64 *);
          };
        ]
      ~symbols:[]
  in
  (match E.open_exe mach lying with
  | Ok _ -> Alcotest.fail "lying section accepted"
  | Error (Diag.Sef_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e));
  let negative =
    Sef.create ~entry:0x1000
      ~sections:
        [
          {
            Sef.sec_name = ".text";
            sec_kind = Sef.Text;
            vaddr = -64;
            size = 64;
            contents = Bytes.make 64 '\000';
          };
        ]
      ~symbols:[]
  in
  match E.open_exe mach negative with
  | Ok _ -> Alcotest.fail "negative vaddr accepted"
  | Error (Diag.Sef_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

let test_cfg_degrades_missing_delay_slot () =
  (* a control transfer as the very last word of a region has no delay
     slot: the block must degrade to data with a warning, not abort *)
  let cache = Eel.Instr_cache.create ~enabled:true mach in
  let lo = 0x1000 in
  let call_word = mach.Eel_arch.Machine.mk_call ~disp:0 in
  let fetch a = if a = lo then Some call_word else None in
  let diag = Diag.create () in
  let g =
    C.build ~diag ~mach ~cache ~fetch ~lo ~hi:(lo + 4) ~entries:[ lo ]
      ~tables:[] ()
  in
  let b =
    match C.block_at g lo with
    | Some b -> b
    | None -> Alcotest.fail "block not carved"
  in
  Alcotest.(check bool) "degraded to data" true b.C.is_data;
  Alcotest.(check bool) "no terminator left" true (b.C.term = C.T_none);
  Alcotest.(check bool) "warning emitted" true (Diag.warnings diag > 0)

let test_budget_exhaustion_is_typed () =
  let tiny = Diag.budget ~stage:"tiny" 3 in
  match
    Diag.guard (fun () ->
        E.read_contents ~budget:tiny mach (base ()) |> ignore)
  with
  | Ok () -> Alcotest.fail "budget of 3 units survived a whole workload"
  | Error (Diag.Budget_error { stage; limit }) ->
      Alcotest.(check string) "stage" "tiny" stage;
      Alcotest.(check int) "limit" 3 limit
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

(* ------------------------------------------------------------------ *)
(* Emulator hardening                                                  *)
(* ------------------------------------------------------------------ *)

let expect_fault name f =
  try
    ignore (f ());
    Alcotest.failf "%s: no fault raised" name
  with
  | Emu.Fault _ -> ()
  | Invalid_argument m -> Alcotest.failf "%s: raw Invalid_argument %s" name m

let test_emu_rejects_lying_contents () =
  expect_fault "lying contents" (fun () ->
      Emu.load
        (Sef.create ~entry:0x1000
           ~sections:
             [
               {
                 Sef.sec_name = ".text";
                 sec_kind = Sef.Text;
                 vaddr = 0x1000;
                 size = 4096;
                 contents = Bytes.make 16 '\000';
               };
             ]
           ~symbols:[]))

let test_emu_rejects_huge_image () =
  (* a section at the top of the address space must fault, not allocate
     gigabytes *)
  expect_fault "huge image" (fun () ->
      Emu.load
        (Sef.create ~entry:0x1000
           ~sections:
             [
               {
                 Sef.sec_name = ".text";
                 sec_kind = Sef.Text;
                 vaddr = 0xFFFF_FF00;
                 size = 256;
                 contents = Bytes.make 256 '\000';
               };
             ]
           ~symbols:[]))

(* ------------------------------------------------------------------ *)
(* Determinism and the smoke corpus                                    *)
(* ------------------------------------------------------------------ *)

let test_mutation_determinism () =
  let t = base () in
  List.iter
    (fun kind ->
      let a = Mutate.apply (Mutate.rng 7) kind t in
      let b = Mutate.apply (Mutate.rng 7) kind t in
      Alcotest.(check bool)
        (Mutate.name kind ^ " deterministic")
        true (String.equal a b))
    Mutate.all

let test_smoke_corpus () =
  (* the satellite contract: 200 seeded mutants, every class, zero escaped
     exceptions. [pipeline] converts structured failures to [Rejected]; any
     other exception propagates and fails the test. *)
  let corpus = Mutate.corpus ~seed:42 ~count:200 (base ~routines:12 ()) in
  Alcotest.(check int) "corpus size" 200 (List.length corpus);
  let ok = ref 0 and rejected = ref 0 in
  List.iter
    (fun (_, _, bytes) ->
      match survives bytes with
      | `Ok -> incr ok
      | `Rejected -> incr rejected)
    corpus;
  Alcotest.(check int) "every mutant classified" 200 (!ok + !rejected);
  (* the corpus must exercise both sides of the contract *)
  Alcotest.(check bool) "some mutants load" true (!ok > 0);
  Alcotest.(check bool) "some mutants are rejected" true (!rejected > 0)

(* ---- adversarial fault injection (ISSUE 6) ----

   The campaign itself runs under `make inject-smoke`; these tests pin the
   building blocks: instrumentation/site discovery, single-class
   detection, greedy minimization, triage dedup, reproducer round-trip,
   and the polymorphic scheduler over (tool x class) arms. *)

module Fault = Eel_mutate.Fault
module Sched = Eel_mutate.Sched

let fib_inst =
  lazy
    (let exe = List.assoc "fib" (Eel_diffexec.Corpus.all ()) in
     match Fault.instrument ~fuel:300_000 "qpt2" ("fib", exe) with
     | Ok t -> t
     | Error m -> Alcotest.failf "instrument qpt2/fib: %s" m)

let test_fault_discovery () =
  let t = Lazy.force fib_inst in
  Alcotest.(check bool) "found executed trap sites" true
    (Fault.sites t Fault.Stray_store <> []);
  Alcotest.(check bool) "found program stores" true
    (Fault.sites t Fault.Mask_store <> []);
  Alcotest.(check bool) "found counter targets" true
    (Fault.sites t Fault.Count_skew <> [])

let test_fault_detected () =
  (* a stray store injected at every executed trap site must be flagged *)
  let t = Lazy.force fib_inst in
  let n = List.length (Fault.sites t Fault.Stray_store) in
  let armed = Fault.arm t Fault.Stray_store (List.init n Fun.id) in
  let at = Fault.attempt ~fuel:300_000 t armed in
  Alcotest.(check bool) "stray store flagged" true at.Fault.at_flagged;
  Alcotest.(check bool) "no crash" false at.Fault.at_crash

let test_fault_contract_lie_detected () =
  (* forgetting a declared region turns the tool's own counter traffic
     into a contract violation *)
  let t = Lazy.force fib_inst in
  let n = List.length (Fault.sites t Fault.Forget_region) in
  Alcotest.(check bool) "qpt2 declares regions" true (n > 0);
  let at =
    Fault.attempt ~fuel:300_000 t
      (Fault.arm t Fault.Forget_region (List.init n Fun.id))
  in
  Alcotest.(check bool) "forgotten region flagged" true at.Fault.at_flagged

let test_fault_minimize_single_site () =
  let t = Lazy.force fib_inst in
  let n = List.length (Fault.sites t Fault.Stray_store) in
  let idxs = List.init n Fun.id in
  let min_sites, _ = Fault.minimize ~fuel:300_000 t Fault.Stray_store idxs in
  Alcotest.(check int) "minimized to one site" 1 (List.length min_sites)

let test_fault_clean_not_flagged () =
  (* arming an empty site set is the unmodified edit: must verify clean *)
  let t = Lazy.force fib_inst in
  let at = Fault.attempt ~fuel:300_000 t (Fault.arm t Fault.Stray_store []) in
  Alcotest.(check bool) "clean edit not flagged" false at.Fault.at_flagged

let test_fault_triage_dedup () =
  let r tool dclass anchor =
    {
      Fault.rx_tool = tool;
      rx_prog = "fib";
      rx_class = Fault.Stray_store;
      rx_sites = [ 0 ];
      rx_desc = "";
      rx_verdict = "contract-violation";
      rx_dclass = dclass;
      rx_anchor = anchor;
    }
  in
  let deduped =
    Fault.triage
      [ r "qpt2" "contract" 16; r "qpt2" "contract" 16; r "qpt2" "contract" 20;
        r "sfi" "contract" 16 ]
  in
  Alcotest.(check int) "three equivalence classes" 3 (List.length deduped)

let test_fault_repro_roundtrip () =
  let r =
    {
      Fault.rx_tool = "qpt2";
      rx_prog = "fib";
      rx_class = Fault.Redzone_spill;
      rx_sites = [ 1 ];
      rx_desc = "trap site";
      rx_verdict = "contract-violation";
      rx_dclass = "contract";
      rx_anchor = 0x43000c;
    }
  in
  match
    Result.bind (Eel_obs.Json.parse (Fault.repro_to_json r)) Fault.spec_of_json
  with
  | Error m -> Alcotest.failf "roundtrip failed: %s" m
  | Ok s ->
      Alcotest.(check string) "tool" "qpt2" s.Fault.sp_tool;
      Alcotest.(check string) "program" "fib" s.Fault.sp_prog;
      Alcotest.(check string) "class" "redzone-spill"
        (Fault.class_name s.Fault.sp_class);
      Alcotest.(check (list int)) "sites" [ 1 ] s.Fault.sp_sites

let test_sched_polymorphic_arms () =
  (* the generalized scheduler must drive arbitrary arm types and favor
     the arm that keeps discovering new signatures *)
  let arms = [| ("qpt2", "stray"); ("sfi", "mask") |] in
  let s = Sched.make ~label:(fun (t, c) -> t ^ ":" ^ c) arms in
  let fresh = ref 0 in
  for _ = 1 to 40 do
    let (tool, _) as arm = Sched.next s in
    let signature =
      if tool = "qpt2" then (
        incr fresh;
        Printf.sprintf "new-%d" !fresh)
      else "same-old"
    in
    ignore (Sched.observe s arm ~signature)
  done;
  Alcotest.(check bool) "productive arm gets more attempts" true
    (Sched.attempts_of s arms.(0) > Sched.attempts_of s arms.(1));
  Alcotest.(check bool) "all signatures counted" true (Sched.distinct s > 2)

(* ---- the eel_diff --reproduce front door (untrusted artifacts) ----

   Reproducer files are attacker-controlled input too: whatever we feed
   the flag, the binary must answer with one structured Diag error on
   stderr and exit 2 — never an uncaught exception (which OCaml reports
   as "Fatal error:" and exit 2 as well, so the assertion keys on the
   structured prefix, not just the status). *)

let eel_diff_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/eel_diff.exe"

let run_reproduce contents_opt =
  let dir = Filename.temp_file "eel_repro" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let artifact = Filename.concat dir "repro.json" in
  (match contents_opt with
  | Some contents ->
      let oc = open_out_bin artifact in
      output_string oc contents;
      close_out oc
  | None -> ());
  let err_file = Filename.concat dir "stderr" in
  let status =
    Sys.command
      (Printf.sprintf "%s --reproduce %s > /dev/null 2> %s"
         (Filename.quote eel_diff_exe) (Filename.quote artifact)
         (Filename.quote err_file))
  in
  let ic = open_in_bin err_file in
  let stderr_text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (status, stderr_text)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let check_structured_refusal what contents_opt =
  let status, stderr_text = run_reproduce contents_opt in
  Alcotest.(check int) (what ^ ": exit status") 2 status;
  Alcotest.(check bool)
    (what ^ ": structured error, not an escaped exception")
    true
    (has_prefix "eel_diff --reproduce:" stderr_text);
  Alcotest.(check bool)
    (what ^ ": no uncaught-exception banner")
    false
    (let re = "Fatal error" in
     let n = String.length stderr_text and m = String.length re in
     let rec scan i =
       i + m <= n && (String.sub stderr_text i m = re || scan (i + 1))
     in
     scan 0)

let test_reproduce_malformed () =
  check_structured_refusal "malformed" (Some "this is { not json")

let test_reproduce_truncated () =
  check_structured_refusal "truncated"
    (Some {|{"tool": "qpt2", "program": "fib", "class": "stray-store", "sit|})

let test_reproduce_garbage () =
  check_structured_refusal "garbage" (Some "\x00\x01\xfe\xff\x80<<>>\x9a")

let test_reproduce_missing_file () = check_structured_refusal "missing" None

let test_reproduce_bogus_spec () =
  (* parses fine, but names a program the campaign cannot rebuild *)
  check_structured_refusal "bogus spec"
    (Some
       {|{"tool": "qpt2", "program": "no-such-prog", "class": "stray-store", "sites": [4]}|})

let () =
  Alcotest.run "robust"
    [
      ( "mutants",
        [
          Alcotest.test_case "truncate header" `Quick test_truncate_header;
          Alcotest.test_case "truncate tail" `Quick test_truncate_tail;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bogus section kind" `Quick test_bogus_section_kind;
          Alcotest.test_case "giant section size" `Quick test_giant_section_size;
          Alcotest.test_case "empty text" `Quick test_empty_text;
          Alcotest.test_case "huge vaddr" `Quick test_huge_vaddr;
          Alcotest.test_case "bit-flipped text" `Quick test_bit_flip_text;
          Alcotest.test_case "overlapping sections" `Quick test_overlapping_sections;
          Alcotest.test_case "shuffled sections" `Quick test_shuffled_sections;
          Alcotest.test_case "bad entry" `Quick test_bad_entry;
          Alcotest.test_case "stripped" `Quick test_stripped;
          Alcotest.test_case "duplicate symbols" `Quick test_duplicate_symbols;
          Alcotest.test_case "debug pollution" `Quick test_debug_pollution;
          Alcotest.test_case "dangling symbol" `Quick test_dangling_symbol;
          Alcotest.test_case "misaligned symbol" `Quick test_misaligned_symbol;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "strict promotion" `Quick test_strict_promotion;
          Alcotest.test_case "truncation at SEF boundary" `Quick
            test_truncation_at_sef_boundary;
          Alcotest.test_case "section validation" `Quick
            test_validation_rejects_lying_sections;
          Alcotest.test_case "CFG delay-slot degradation" `Quick
            test_cfg_degrades_missing_delay_slot;
          Alcotest.test_case "budget exhaustion" `Quick
            test_budget_exhaustion_is_typed;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "lying contents fault" `Quick
            test_emu_rejects_lying_contents;
          Alcotest.test_case "huge image fault" `Quick test_emu_rejects_huge_image;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "mutation determinism" `Quick
            test_mutation_determinism;
          Alcotest.test_case "200-mutant smoke corpus" `Quick test_smoke_corpus;
        ] );
      ( "cli",
        [
          Alcotest.test_case "reproduce rejects malformed JSON" `Quick
            test_reproduce_malformed;
          Alcotest.test_case "reproduce rejects truncated JSON" `Quick
            test_reproduce_truncated;
          Alcotest.test_case "reproduce rejects binary garbage" `Quick
            test_reproduce_garbage;
          Alcotest.test_case "reproduce rejects missing file" `Quick
            test_reproduce_missing_file;
          Alcotest.test_case "reproduce rejects bogus spec" `Quick
            test_reproduce_bogus_spec;
        ] );
      ( "inject",
        [
          Alcotest.test_case "site discovery" `Quick test_fault_discovery;
          Alcotest.test_case "stray store detected" `Quick test_fault_detected;
          Alcotest.test_case "contract lie detected" `Quick
            test_fault_contract_lie_detected;
          Alcotest.test_case "minimize to one site" `Quick
            test_fault_minimize_single_site;
          Alcotest.test_case "clean edit not flagged" `Quick
            test_fault_clean_not_flagged;
          Alcotest.test_case "triage dedup" `Quick test_fault_triage_dedup;
          Alcotest.test_case "reproducer roundtrip" `Quick
            test_fault_repro_roundtrip;
          Alcotest.test_case "polymorphic scheduler" `Quick
            test_sched_polymorphic_arms;
        ] );
    ]
