(* The rewriting service and its content-addressed cache (ISSUE 8).

   What must hold, roughly in dependency order:

   - routine digests are stable across opens, distinct across routines,
     and sensitive to exactly the inputs analysis depends on (text bytes,
     slicing policy);
   - the analysis-artifact codec round-trips (including literal tables)
     and rejects corrupt/truncated/foreign blobs as misses;
   - the two-layer cache: mem hits, durable disk hits across a fresh
     Cache.t, oldest-first eviction under a small byte budget, and
     survival under concurrent hit/miss races from Pool domains;
   - per-routine dirty invalidation: patching ONE routine's text makes
     exactly that routine re-analyze on the next open — every clean
     routine still hits;
   - end-to-end byte identity: across the full corpus x all 6 tools,
     cache-hit edited images are byte-identical to cache-miss images,
     both for the whole-job result cache and for the seeded-analysis
     path (result cache off), and both match a direct Toolbox.measure. *)

module E = Eel.Executable
module C = Eel.Cfg
module Sef = Eel_sef.Sef
module Gen = Eel_workload.Gen
module Corpus = Eel_diffexec.Corpus
module Toolbox = Eel_tools.Toolbox
module Cache = Eel_service.Cache
module Analysis = Eel_service.Analysis
module Proto = Eel_service.Proto
module Serve = Eel_service.Serve
module Pool = Eel_util.Pool

let mach = Eel_sparc.Mach.mach
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let assemble src =
  match Eel_sparc.Asm.assemble src with
  | Ok e -> e
  | Error m -> failwith ("test_serve: assembly failed: " ^ m)

let gen_exe ?(seed = 11) ?(routines = 8) () =
  assemble (Gen.program { Gen.default with seed; routines })

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir "eel_serve_test" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* Deep-copy an executable through its canonical serialization so byte
   patches don't alias the original. *)
let copy_exe exe =
  match Sef.load (Sef.to_string exe) with
  | Ok e -> e
  | Error _ -> failwith "test_serve: roundtrip failed"

(* ---------------- digests ---------------- *)

let test_digest_stability () =
  let exe = gen_exe () in
  let digests e =
    let t = E.read_contents mach e in
    List.map (fun r -> (r.E.r_name, E.routine_digest t r)) (E.routines t)
  in
  let d1 = digests exe in
  let d2 = digests (copy_exe exe) in
  check_bool "digests are stable across opens" true (d1 = d2);
  let names = List.map fst d1 in
  let uniq = List.sort_uniq compare (List.map snd d1) in
  check_int "digests are distinct across routines" (List.length names)
    (List.length uniq)

let test_digest_sensitivity () =
  let exe = gen_exe () in
  let t1 = E.read_contents mach exe in
  let r1 = List.hd (E.routines t1) in
  let base = E.routine_digest t1 r1 in
  (* slicing policy feeds the digest *)
  let t2 = E.read_contents mach exe in
  t2.E.slicing <- false;
  let r2 = List.hd (E.routines t2) in
  check_bool "slicing policy changes the digest" true
    (E.routine_digest t2 r2 <> base);
  (* patching the routine's text changes the digest; other routines keep
     theirs *)
  let patched = copy_exe exe in
  let text = List.hd (Sef.text_sections patched) in
  Eel_util.Bytebuf.set32_be text.Sef.contents
    (r1.E.r_lo + 4 - text.Sef.vaddr)
    0x01000000 (* nop *);
  let t3 = E.read_contents mach patched in
  let r3 = List.hd (E.routines t3) in
  check_bool "patched text changes the digest" true
    (E.routine_digest t3 r3 <> base);
  List.iter2
    (fun ra rb ->
      if ra.E.r_name <> r1.E.r_name then
        check_str
          (Printf.sprintf "clean routine %s keeps its digest" ra.E.r_name)
          (E.routine_digest t1 ra) (E.routine_digest t3 rb))
    (E.routines t1) (E.routines t3)

(* ---------------- analysis codec ---------------- *)

let test_analysis_codec () =
  let tables =
    [
      (0x1000, { C.t_addr = 0x2000; t_targets = [| 0x1010; 0x1020; 0x1030 |] });
      (0x1100, { C.t_addr = -1; t_targets = [| 0x1200 |] });
      (0x1200, { C.t_addr = 0x2400; t_targets = [||] });
    ]
  in
  let blob = Analysis.encode tables in
  (match Analysis.decode blob with
  | Some got -> check_bool "codec round-trips" true (got = tables)
  | None -> Alcotest.fail "decode rejected its own encoding");
  check_bool "truncated blob is a miss" true
    (Analysis.decode (String.sub blob 0 (String.length blob - 3)) = None);
  check_bool "foreign magic is a miss" true
    (Analysis.decode ("XXXX" ^ blob) = None);
  check_bool "empty blob is a miss" true (Analysis.decode "" = None)

(* ---------------- cache layers ---------------- *)

let test_cache_mem_roundtrip () =
  let c = Cache.create ~mem_budget_bytes:(1 lsl 20) () in
  check_bool "miss before put" true (Cache.get c ~ns:"t" "k1" = None);
  Cache.put c ~ns:"t" "k1" "v1";
  check_bool "hit after put" true (Cache.get c ~ns:"t" "k1" = Some "v1");
  Cache.put c ~ns:"u" "k1" "v2";
  check_bool "namespaces are disjoint" true (Cache.get c ~ns:"t" "k1" = Some "v1");
  let s = Cache.snapshot c in
  check_int "two stores" 2 s.Cache.sn_stores;
  check_int "one miss" 1 s.Cache.sn_misses;
  check_int "two mem hits" 2 s.Cache.sn_mem_hits

let test_cache_disk_durability () =
  with_temp_dir @@ fun dir ->
  let c1 = Cache.create ~dir () in
  Cache.put c1 ~ns:"t" "deadbeef" "payload";
  (* a brand-new Cache.t over the same directory — the restarted-daemon
     case — must serve the entry from disk *)
  let c2 = Cache.create ~dir () in
  check_bool "disk survives process boundary" true
    (Cache.get c2 ~ns:"t" "deadbeef" = Some "payload");
  let s = Cache.snapshot c2 in
  check_int "served from disk" 1 s.Cache.sn_disk_hits;
  (* promoted to mem: second get is a mem hit *)
  ignore (Cache.get c2 ~ns:"t" "deadbeef");
  check_int "promoted to mem" 1 (Cache.snapshot c2).Cache.sn_mem_hits

let test_cache_eviction () =
  with_temp_dir @@ fun dir ->
  (* budget fits ~3 of the 1KB payloads; write 8 with strictly increasing
     mtimes and the survivors must be the newest *)
  let c = Cache.create ~dir ~disk_budget_bytes:3500 () in
  let payload = String.make 1000 'x' in
  for i = 0 to 7 do
    Cache.put c ~ns:"t" (Printf.sprintf "key%d" i) payload;
    let path = Filename.concat dir (Printf.sprintf "t-key%d" i) in
    let mtime = 1.0e9 +. (100.0 *. float_of_int i) in
    Unix.utimes path mtime mtime
  done;
  Cache.enforce_disk_budget c;
  let s = Cache.snapshot c in
  check_bool "evictions happened" true (s.Cache.sn_evictions > 0);
  check_bool "disk is within budget" true (s.Cache.sn_disk_bytes <= 3500);
  Cache.mem_clear c;
  check_bool "newest entry survives" true
    (Cache.get c ~ns:"t" "key7" = Some payload);
  check_bool "oldest entry was evicted" true (Cache.get c ~ns:"t" "key0" = None)

let test_cache_concurrent () =
  (* hammer one shared cache from 4 domains with overlapping keys: no
     crash, no torn value, and every key ends up readable with the right
     content (puts of the same key always carry the same value —
     content-addressed, like real use) *)
  with_temp_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  let results =
    Pool.map ~jobs:4
      (fun i ->
        let key = Printf.sprintf "key%d" (i mod 8) in
        let value = String.make (100 + (i mod 8)) (Char.chr (65 + (i mod 8))) in
        (match Cache.get c ~ns:"race" key with
        | Some v when v <> value -> failwith "torn read"
        | _ -> ());
        Cache.put c ~ns:"race" key value;
        Cache.get c ~ns:"race" key = Some value)
      (Array.init 64 Fun.id)
  in
  check_bool "every domain read back its write" true
    (Array.for_all Fun.id results);
  for i = 0 to 7 do
    let expect = String.make (100 + i) (Char.chr (65 + i)) in
    check_bool
      (Printf.sprintf "key%d has untorn content" i)
      true
      (Cache.get c ~ns:"race" (Printf.sprintf "key%d" i) = Some expect)
  done

(* ---------------- per-routine dirty invalidation ---------------- *)

let test_dirty_invalidation () =
  let exe = gen_exe ~seed:23 ~routines:10 () in
  let cache = Cache.create () in
  Analysis.install cache;
  Fun.protect ~finally:Analysis.uninstall @@ fun () ->
  let open_all e =
    let t = E.read_contents mach e in
    ignore (E.jump_stats t);
    t
  in
  let t1 = open_all exe in
  let s1 = Cache.snapshot cache in
  check_bool "first open stores artifacts" true (s1.Cache.sn_stores > 0);
  (* clean re-open: everything hits, nothing misses or stores *)
  ignore (open_all (copy_exe exe));
  let s2 = Cache.snapshot cache in
  check_int "clean re-open misses nothing"
    s1.Cache.sn_misses s2.Cache.sn_misses;
  check_int "clean re-open stores nothing"
    s1.Cache.sn_stores s2.Cache.sn_stores;
  let lookups_per_open = Cache.hits s2 - Cache.hits s1 in
  check_bool "clean re-open hits every routine" true
    (lookups_per_open >= List.length (E.routines t1));
  (* patch ONE routine's body (a mid-routine add -> nop): on re-open only
     that routine's digest changes, so exactly one lookup misses *)
  let patched = copy_exe exe in
  let victim = List.nth (E.routines t1) 2 in
  let text = List.hd (Sef.text_sections patched) in
  Eel_util.Bytebuf.set32_be text.Sef.contents
    (victim.E.r_lo + 8 - text.Sef.vaddr)
    0x01000000;
  ignore (open_all patched);
  let s3 = Cache.snapshot cache in
  check_int "patched open misses exactly the dirty routine"
    (s2.Cache.sn_misses + 1) s3.Cache.sn_misses;
  check_int "patched open re-stores exactly the dirty routine"
    (s2.Cache.sn_stores + 1) s3.Cache.sn_stores;
  check_int "clean routines all hit"
    (lookups_per_open - 1)
    (Cache.hits s3 - Cache.hits s2)

(* A cached dispatch table is only trusted if the table words in memory
   still decode to the recorded targets: patch the table contents (which
   live in .data, outside the routine digest) and the hit must demote to a
   fresh analysis, keeping the CFG consistent with current memory. *)
let table_targets t =
  List.concat_map
    (fun r ->
      match r.E.r_cfg with
      | None -> []
      | Some g ->
          List.filter_map
            (fun b ->
              match b.C.term with
              | C.T_jump { addr; table = Some tbl; _ } ->
                  Some (addr, Array.to_list tbl.C.t_targets)
              | _ -> None)
            (C.blocks g))
    (E.routines t)

let test_table_revalidation () =
  (* gcc-small's switches all resolve through the slicing fixpoint, so the
     cached facts carry real table addresses to invalidate (the hand-written
     jump-table program exercises the run-time translation fallback instead) *)
  let src = List.assoc "gcc-small" Corpus.sources in
  let exe = assemble src in
  let cache = Cache.create () in
  Analysis.install cache;
  Fun.protect ~finally:Analysis.uninstall @@ fun () ->
  let t1 = E.read_contents mach exe in
  ignore (E.jump_stats t1);
  check_bool "analysis cached some artifacts" true
    ((Cache.snapshot cache).Cache.sn_stores > 0);
  check_bool "slicing resolved at least one dispatch table" true
    (table_targets t1 <> []);
  let patched = copy_exe exe in
  let data =
    List.find
      (fun (s : Sef.section) -> s.Sef.sec_name = ".data")
      patched.Sef.sections
  in
  let tbl_off = ref None in
  (* find the first word in .data that points into text: that's a table
     slot for this corpus program *)
  let text = List.hd (Sef.text_sections patched) in
  (try
     for i = 0 to (data.Sef.size / 4) - 1 do
       let w = Eel_util.Bytebuf.get32_be data.Sef.contents (4 * i) in
       if w >= text.Sef.vaddr && w < text.Sef.vaddr + text.Sef.size then (
         tbl_off := Some (4 * i);
         raise Exit)
     done
   with Exit -> ());
  match !tbl_off with
  | None -> Alcotest.fail "no dispatch table found in .data"
  | Some off ->
      (* retarget the first slot onto the third: the target SET changes,
         so the cached facts are genuinely stale, not just permuted *)
      let c = Eel_util.Bytebuf.get32_be data.Sef.contents (off + 8) in
      Eel_util.Bytebuf.set32_be data.Sef.contents off c;
      let t2 = E.read_contents mach patched in
      ignore (E.jump_stats t2);
      (* ground truth: the same patched image analyzed with no cache *)
      Analysis.uninstall ();
      let t3 = E.read_contents mach (copy_exe patched) in
      ignore (E.jump_stats t3);
      check_bool "revalidated analysis equals uncached ground truth" true
        (table_targets t2 = table_targets t3);
      check_bool "patched table differs from the original analysis" true
        (table_targets t2 <> table_targets t1)

(* ---------------- the service engine ---------------- *)

let full_corpus_jobs () =
  List.concat_map
    (fun (prog, _) ->
      List.map
        (fun tool ->
          {
            Proto.j_id = Printf.sprintf "%s-%s" tool prog;
            j_tool = tool;
            j_src = Proto.S_corpus prog;
            j_fuel = None;
            j_sfi_base = None;
            j_sfi_size = None;
          })
        Toolbox.names)
    Corpus.sources

let edited r =
  match r.Serve.sr_outcome with
  | Ok o -> o.Serve.o_edited
  | Error m -> failwith (r.Serve.sr_id ^ ": " ^ m)

(* The acceptance-bar test: across the full corpus x all 6 tools, the
   cache-hit edited image is byte-identical to the cache-miss image, and
   both match a direct (cacheless) Toolbox.measure. *)
let test_corpus_byte_identity () =
  let jobs = full_corpus_jobs () in
  let cache = Cache.create () in
  let cfg = Serve.default_config cache in
  let cold = Serve.run_batch ~jobs:1 cfg jobs in
  let warm = Serve.run_batch ~jobs:1 cfg jobs in
  check_int "every cold job equivalent" (List.length jobs)
    (List.length (List.filter Serve.ok cold));
  check_bool "no cold job served from cache" true
    (not (List.exists Serve.cached cold));
  check_bool "every warm job served from cache" true
    (List.for_all Serve.cached warm);
  List.iter2
    (fun c w ->
      if edited c <> edited w then
        Alcotest.fail (c.Serve.sr_id ^ ": cache hit diverged from miss"))
    cold warm;
  (* spot-check against the one-door API with no service in the way *)
  List.iter
    (fun (r : Serve.result) ->
      if r.sr_tool = "qpt2" || r.sr_tool = "sfi" then
        match
          Toolbox.measure ~prog:r.sr_prog r.sr_tool mach
            (List.assoc r.sr_prog (Corpus.all ()))
        with
        | Error e -> Alcotest.fail (Eel_robust.Diag.error_message e)
        | Ok ms ->
            check_str
              (r.Serve.sr_id ^ ": served image == direct measure")
              (Digest.string (Sef.to_string ms.Toolbox.ms_applied.Toolbox.ap_edited))
              (Digest.string (edited r)))
      cold

(* Same bar for the analysis cache alone: with the result cache off, warm
   jobs really re-instrument and re-verify, but their CFGs build from
   cached table facts — the output must still be byte-identical. *)
let test_analysis_seeded_identity () =
  let jobs =
    List.filter
      (fun j -> j.Proto.j_tool = "qpt2" || j.Proto.j_tool = "amemory")
      (full_corpus_jobs ())
  in
  let cache = Cache.create () in
  let cfg = { (Serve.default_config cache) with Serve.c_use_result = false } in
  let cold = Serve.run_batch ~jobs:1 cfg jobs in
  check_bool "analysis facts were stored" true
    ((Cache.snapshot cache).Cache.sn_stores > 0);
  let warm = Serve.run_batch ~jobs:1 cfg jobs in
  check_bool "warm run hit the analysis cache" true
    ((Cache.snapshot cache).Cache.sn_mem_hits > 0);
  check_bool "result cache stayed out of it" true
    (not (List.exists Serve.cached warm));
  List.iter2
    (fun c w ->
      if edited c <> edited w then
        Alcotest.fail
          (c.Serve.sr_id ^ ": seeded-analysis image diverged from scratch"))
    cold warm

let test_concurrent_service_races () =
  (* same shared cache, 4 domains, jobs that collide on both cache
     namespaces: half the batch is the same (tool, program) repeated, so
     domains race result-cache puts and analysis lookups; results must be
     identical to the serial run *)
  let repeat = List.init 8 (fun i ->
      {
        Proto.j_id = Printf.sprintf "r%d" i;
        j_tool = "qpt2";
        j_src = Proto.S_corpus "fib";
        j_fuel = None;
        j_sfi_base = None;
        j_sfi_size = None;
      })
  in
  let mixed = Serve.mixed_jobs ~count:8 ~seed:5 in
  let batch = repeat @ mixed in
  let run jobs_n =
    let cache = Cache.create () in
    Serve.run_batch ~jobs:jobs_n (Serve.default_config cache) batch
  in
  let serial = run 1 in
  let parallel = run 4 in
  check_int "parallel run count" (List.length serial) (List.length parallel);
  List.iter2
    (fun a b ->
      check_str (a.Serve.sr_id ^ ": parallel == serial image")
        (Digest.string (edited a))
        (Digest.string (edited b)))
    serial parallel

let test_result_cache_robustness () =
  (* garbage under the job key must behave as a miss, not an answer *)
  let cache = Cache.create () in
  let cfg = Serve.default_config cache in
  let job =
    {
      Proto.j_id = "j0";
      j_tool = "qpt2";
      j_src = Proto.S_corpus "countdown";
      j_fuel = None;
      j_sfi_base = None;
      j_sfi_size = None;
    }
  in
  let exe =
    match Serve.resolve job with Ok (e, _) -> e | Error m -> failwith m
  in
  let key = Serve.job_key cfg job (Sef.to_string exe) in
  Cache.put cache ~ns:"job" key "corrupt garbage";
  let r = List.hd (Serve.run_batch ~jobs:1 cfg [ job ]) in
  check_bool "corrupt entry is a miss" true (not (Serve.cached r));
  check_bool "job still verifies" true (Serve.ok r)

(* ---------------- protocol ---------------- *)

let test_proto_parse () =
  let ok line =
    match Proto.job_of_line ~seq:1 line with
    | Ok j -> j
    | Error m -> failwith (line ^ ": " ^ m)
  in
  let err line =
    match Proto.job_of_line ~seq:1 line with
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
    | Error m -> m
  in
  let j = ok {|{"id": "a", "tool": "qpt2", "corpus": "fib"}|} in
  check_str "id" "a" j.Proto.j_id;
  check_bool "src" true (j.Proto.j_src = Proto.S_corpus "fib");
  let j = ok {|{"tool": "sfi", "gen": {"seed": 3, "routines": 5}, "fuel": 99}|} in
  check_str "default id from seq" "job-1" j.Proto.j_id;
  check_bool "gen defaults" true
    (j.Proto.j_src = Proto.S_gen { seed = 3; routines = 5; style = "gcc" });
  check_bool "fuel" true (j.Proto.j_fuel = Some 99);
  ignore (err "not json at all");
  ignore (err {|{"corpus": "fib"}|});
  ignore (err {|{"tool": "nope", "corpus": "fib"}|});
  ignore (err {|{"tool": "qpt2"}|});
  ignore (err {|{"tool": "qpt2", "corpus": "fib", "file": "x.sef"}|});
  ignore (err {|{"tool": "qpt2", "sef_hex": "abc"}|});
  ignore (err {|{"tool": "qpt2", "gen": {"style": "msvc"}}|})

let test_proto_roundtrip () =
  List.iter
    (fun j ->
      match Proto.job_of_line ~seq:9 (Proto.job_to_line j) with
      | Ok j' -> check_bool "job_to_line round-trips" true (j = j')
      | Error m -> Alcotest.fail m)
    (Serve.mixed_jobs ~count:25 ~seed:3
    @ [
        {
          Proto.j_id = "inline";
          j_tool = "tracer";
          j_src = Proto.S_inline "raw \x00\xffbytes";
          j_fuel = Some 5;
          j_sfi_base = Some 64;
          j_sfi_size = Some 4096;
        };
      ]);
  (* hex codec corners *)
  check_bool "hex round-trip" true
    (Proto.hex_decode (Proto.hex_encode "\x00\x01\xfe\xff") = Ok "\x00\x01\xfe\xff");
  check_bool "odd-length hex rejected" true
    (Result.is_error (Proto.hex_decode "abc"));
  check_bool "bad digit rejected" true (Result.is_error (Proto.hex_decode "zz"))

let () =
  Alcotest.run "serve"
    [
      ( "digests",
        [
          Alcotest.test_case "stability" `Quick test_digest_stability;
          Alcotest.test_case "sensitivity" `Quick test_digest_sensitivity;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "codec" `Quick test_analysis_codec;
          Alcotest.test_case "dirty invalidation" `Quick test_dirty_invalidation;
          Alcotest.test_case "table revalidation" `Quick test_table_revalidation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "mem roundtrip" `Quick test_cache_mem_roundtrip;
          Alcotest.test_case "disk durability" `Quick test_cache_disk_durability;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "concurrent races" `Quick test_cache_concurrent;
        ] );
      ( "service",
        [
          Alcotest.test_case "corpus byte identity" `Slow test_corpus_byte_identity;
          Alcotest.test_case "seeded-analysis identity" `Slow test_analysis_seeded_identity;
          Alcotest.test_case "concurrent service races" `Slow test_concurrent_service_races;
          Alcotest.test_case "result-cache robustness" `Quick test_result_cache_robustness;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_proto_parse;
          Alcotest.test_case "roundtrip" `Quick test_proto_roundtrip;
        ] );
    ]
