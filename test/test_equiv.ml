(* Tests for the edit-contract subsystem (lib/equiv) and the contract
   oracle (Diffexec.verify_edit): the contract mask itself, the emulator's
   record-time event filter, masked equivalence of real instrumented edits
   over the corpus, qpt2's counter cross-validation against ground truth,
   and the acceptance-criteria seeded contract violations. *)

module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module Diag = Eel_robust.Diag
module E = Eel.Executable
module Contract = Eel_equiv.Contract
module Dx = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Toolbox = Eel_tools.Toolbox
module Qpt2 = Eel_tools.Qpt2
module Json = Eel_obs.Json
open Eel_sparc

let mach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let execute_ok ?profile ?filter exe =
  match Dx.execute ?profile ?filter exe with
  | Ok r -> r
  | Error e -> Alcotest.failf "execute: %s" (Diag.error_message e)

let apply_ok tool exe =
  match Toolbox.apply tool mach exe with
  | Ok ap -> ap
  | Error m -> Alcotest.failf "%s: %s" tool m

let verify_ok ap exe =
  match
    Dx.verify_edit ~norm_b:ap.Toolbox.ap_norm_b
      ~block_of:ap.Toolbox.ap_block_of ~contract:ap.Toolbox.ap_contract exe
      ap.Toolbox.ap_edited
  with
  | Ok er -> er
  | Error e ->
      Alcotest.failf "%s: %s" ap.Toolbox.ap_tool (Diag.error_message e)

let exit0 = "        mov 0, %o0\n        ta 1\n        nop\n"

(* ------------------------------------------------------------------ *)
(* The contract mask                                                   *)
(* ------------------------------------------------------------------ *)

let store ?(pc = 0x10000) addr =
  Emu.Ob_store { pc; addr; width = 4; value = 1 }

let test_regions () =
  Alcotest.(check bool) "empty span" true (Contract.span ~name:"x" [] = None);
  (match Contract.span ~name:"x" [ 0x108; 0x100; 0x104 ] with
  | Some r ->
      Alcotest.(check int) "lo" 0x100 r.Contract.rg_lo;
      Alcotest.(check int) "hi covers last word" 0x10c r.Contract.rg_hi
  | None -> Alcotest.fail "span of three words");
  let ct =
    Contract.make "t"
      ~regions:[ Contract.region ~name:"c" ~lo:0x100 ~size:8 ]
  in
  Alcotest.(check bool) "lo inside" true (Contract.declares_store ct 0x100);
  Alcotest.(check bool) "last byte inside" true (Contract.declares_store ct 0x107);
  Alcotest.(check bool) "hi outside" false (Contract.declares_store ct 0x108);
  Alcotest.(check bool) "below outside" false (Contract.declares_store ct 0xfc)

let test_red_zone_and_traps () =
  let ct = Contract.make "t" ~red_zone:64 ~traps:[ 9 ] in
  let sp = 0x7f0000 in
  Alcotest.(check bool) "just below sp" true
    (Contract.declared ct ~sp (store (sp - 4)));
  Alcotest.(check bool) "red-zone floor" true
    (Contract.declared ct ~sp (store (sp - 64)));
  Alcotest.(check bool) "below the red zone" false
    (Contract.declared ct ~sp (store (sp - 68)));
  Alcotest.(check bool) "at sp (not below)" false
    (Contract.declared ct ~sp (store sp));
  Alcotest.(check bool) "declared trap" true
    (Contract.declared ct ~sp (Emu.Ob_trap { pc = 0; num = 9; arg = 0 }));
  Alcotest.(check bool) "undeclared trap" false
    (Contract.declared ct ~sp (Emu.Ob_trap { pc = 0; num = 2; arg = 0 }));
  (* terminal events are never the instrumentation's *)
  Alcotest.(check bool) "exit never declared" false
    (Contract.declared ct ~sp (Emu.Ob_exit { pc = 0; code = 0 }))

let test_mask_events () =
  let ct =
    Contract.make "t"
      ~regions:[ Contract.region ~name:"c" ~lo:0x200 ~size:4 ]
      ~traps:[ 9 ]
  in
  let evs =
    [|
      store 0x200;
      store 0x300;
      Emu.Ob_trap { pc = 0; num = 9; arg = 1 };
      Emu.Ob_trap { pc = 0; num = 2; arg = 1 };
      Emu.Ob_exit { pc = 0; code = 0 };
    |]
  in
  let kept = Contract.mask_events ct evs in
  Alcotest.(check int) "three survive" 3 (Array.length kept);
  Alcotest.(check bool) "program store kept" true (kept.(0) = store 0x300)

let test_run_checks_first_failure () =
  let ck name r = { Contract.ck_name = name; ck_run = (fun ~profile:_ ~mem:_ -> r) } in
  let ct =
    Contract.make "t"
      ~checks:[ ck "good" (Ok ()); ck "bad" (Error "boom"); ck "worse" (Error "x") ]
  in
  let profile = Emu.create_profile () in
  match Contract.run_checks ct ~profile ~mem:(Bytes.create 4) with
  | Error msg -> Alcotest.(check string) "first failure" "check bad: boom" msg
  | Ok () -> Alcotest.fail "expected a failure"

(* ------------------------------------------------------------------ *)
(* The emulator's record-time filter                                   *)
(* ------------------------------------------------------------------ *)

let store_loop_src =
  {|
main:   mov 7, %l1
        mov 3, %l0
        set buf, %l2
Lloop:  st %l1, [%l2]
        subcc %l0, 1, %l0
        bne Lloop
        nop
        ld [%l2], %o0
        ta 2
|}
  ^ exit0 ^ "        .data\n        .align 4\nbuf:    .word 0\n"

let test_obs_filter_masks_at_record_time () =
  let exe = assemble store_loop_src in
  let plain = execute_ok exe in
  let stores r =
    Array.to_list r.Dx.r_events
    |> List.filter (function Emu.Ob_store _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "three stores unfiltered" 3 (stores plain);
  (* mask every store: the log shrinks, the masked count accounts for it,
     and filtered events do not consume the total either *)
  let masked =
    execute_ok
      ~filter:(fun _ ev ->
        match ev with Emu.Ob_store _ -> false | _ -> true)
      exe
  in
  Alcotest.(check int) "no stores recorded" 0 (stores masked);
  Alcotest.(check int) "masked count" 3 masked.Dx.r_filtered;
  Alcotest.(check int) "total excludes masked" (plain.Dx.r_total - 3)
    masked.Dx.r_total

let test_obs_filter_never_masks_terminal_events () =
  (* a faulting program under a drop-everything filter still records the
     fault: terminal events are exempt by construction *)
  let exe = assemble "main:   .word 0\n        nop\n" in
  let r = execute_ok ~filter:(fun _ _ -> false) exe in
  match Array.to_list r.Dx.r_events with
  | [ Emu.Ob_fault _ ] -> ()
  | evs -> Alcotest.failf "expected exactly the fault, got %d events" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Masked equivalence of real edits                                    *)
(* ------------------------------------------------------------------ *)

let corpus_subset = [ "countdown"; "fib"; "jump-table"; "mem-widths" ]

let test_corpus_masked_equivalence () =
  List.iter
    (fun tool ->
      List.iter
        (fun name ->
          let exe = assemble (List.assoc name Corpus.sources) in
          let ap = apply_ok tool exe in
          let er = verify_ok ap exe in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdict" tool name)
            "equivalent"
            (Dx.verdict_name er.Dx.er_report.Dx.rp_verdict))
        corpus_subset)
    [ "qpt2"; "tracer"; "sfi" ]

let test_qpt2_masks_counter_traffic () =
  (* fib branches a lot: the contract must mask real counter stores, and
     say how many *)
  let exe = assemble (List.assoc "fib" Corpus.sources) in
  let ap = apply_ok "qpt2" exe in
  let er = verify_ok ap exe in
  Alcotest.(check string) "verdict" "equivalent"
    (Dx.verdict_name er.Dx.er_report.Dx.rp_verdict);
  Alcotest.(check bool) "counter stores were masked" true (er.Dx.er_masked > 0)

let test_remaining_tools_equivalent () =
  List.iter
    (fun (tool, src) ->
      let exe = assemble src in
      let ap = apply_ok tool exe in
      let er = verify_ok ap exe in
      Alcotest.(check string) (tool ^ " verdict") "equivalent"
        (Dx.verdict_name er.Dx.er_report.Dx.rp_verdict))
    [
      ("oldqpt", List.assoc "fib" Corpus.sources);
      ("amemory", List.assoc "memory-bound" Corpus.sources);
      ("optprof", List.assoc "fib" Corpus.sources);
    ]

let test_equiv_metrics_published () =
  let exe = assemble (List.assoc "countdown" Corpus.sources) in
  let ap = apply_ok "qpt2" exe in
  let er = verify_ok ap exe in
  (match Eel_obs.Metrics.find "eel.equiv.runs" with
  | Some (Eel_obs.Metrics.Int n) ->
      Alcotest.(check bool) "runs counted" true (n > 0)
  | _ -> Alcotest.fail "eel.equiv.runs not published");
  match Eel_obs.Metrics.find "eel.equiv.masked_events" with
  | Some (Eel_obs.Metrics.Int n) ->
      Alcotest.(check bool) "masked events accumulated" true
        (n >= er.Dx.er_masked)
  | _ -> Alcotest.fail "eel.equiv.masked_events not published"

(* ------------------------------------------------------------------ *)
(* qpt2 counter cross-validation against emulator ground truth         *)
(* ------------------------------------------------------------------ *)

let workload ?(routines = 10) ?(seed = 23) () =
  match
    Asm.assemble
      (Eel_workload.Gen.program
         { Eel_workload.Gen.default with routines; seed })
  with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "workload assembly failed: %s" m

let test_qpt2_counts_cross_validate () =
  let exe = workload () in
  let p = Qpt2.instrument mach exe in
  let ra = execute_ok ~profile:true exe in
  let rb = execute_ok p.Qpt2.edited in
  let profile =
    match ra.Dx.r_profile with
    | Some pr -> pr
    | None -> Alcotest.fail "no profile collected"
  in
  (match Qpt2.validate_counts p ~profile ~mem:rb.Dx.r_mem with
  | Ok () -> ()
  | Error m -> Alcotest.failf "cross-validation rejected a correct run: %s" m);
  (* corrupt one counter word: the promise must break *)
  match p.Qpt2.counters with
  | [] -> Alcotest.fail "workload produced no counters"
  | c :: _ ->
      let mem = Bytes.copy rb.Dx.r_mem in
      Eel_util.Bytebuf.set32_be mem c.Qpt2.c_addr
        (Eel_util.Bytebuf.get32_be mem c.Qpt2.c_addr + 1);
      (match Qpt2.validate_counts p ~profile ~mem with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "tampered counter passed cross-validation")

let test_qpt2_check_runs_under_oracle () =
  (* the same promise, exercised through verify_edit's check machinery *)
  let exe = workload ~routines:6 ~seed:31 () in
  let ap = apply_ok "qpt2" exe in
  let er = verify_ok ap exe in
  Alcotest.(check string) "verdict" "equivalent"
    (Dx.verdict_name er.Dx.er_report.Dx.rp_verdict)

(* ------------------------------------------------------------------ *)
(* Seeded contract violations (the acceptance criteria)                *)
(* ------------------------------------------------------------------ *)

let test_violation_counter_outside_declared_range () =
  (* instrument for real, then lie in the contract: declare every counter
     word except the highest one. The edited program's store to the
     undeclared word must surface as Contract_violation, anchored at the
     edited-side pc of the offending store *)
  let exe = assemble store_loop_src in
  let p = Qpt2.instrument mach exe in
  let addrs = List.map (fun c -> c.Qpt2.c_addr) p.Qpt2.counters in
  Alcotest.(check bool) "at least two counters" true (List.length addrs >= 2);
  let omitted = List.fold_left max (List.hd addrs) addrs in
  let lo = List.fold_left min (List.hd addrs) addrs in
  let forged =
    Contract.make "qpt2"
      ~regions:[ Contract.region ~name:"truncated" ~lo ~size:(omitted - lo) ]
      ~red_zone:Eel.Snippet.red_zone
  in
  match
    Dx.verify_edit
      ~norm_b:(E.inverse_address_norm p.Qpt2.exec)
      ~contract:forged exe p.Qpt2.edited
  with
  | Error e -> Alcotest.failf "oracle: %s" (Diag.error_message e)
  | Ok er -> (
      let rp = er.Dx.er_report in
      Alcotest.(check string) "verdict" "contract-violation"
        (Dx.verdict_name rp.Dx.rp_verdict);
      match rp.Dx.rp_divergence with
      | None -> Alcotest.fail "missing divergence detail"
      | Some dv -> (
          (match dv.Dx.dv_class with
          | Dx.D_contract -> ()
          | c -> Alcotest.failf "class: %s" (Dx.dclass_name c));
          match dv.Dx.dv_edit with
          | Some (Emu.Ob_store { addr; pc; _ }) ->
              Alcotest.(check int) "offending store address" omitted addr;
              Alcotest.(check int) "pc anchored at the edited-side store" pc
                dv.Dx.dv_pc
          | _ -> Alcotest.fail "offending event is not a store"))

let test_violation_clobbered_program_store () =
  (* a mutant that clobbers a PROGRAM store (not instrumentation): change
     the stored value in the edited image. The store address belongs to the
     original run too, so this is a genuine divergence, never blamed on the
     contract *)
  let exe = assemble store_loop_src in
  let p = Qpt2.instrument mach exe in
  (* mov 7, %l1 sits at main+0 in the original; find its edited home *)
  let mov_pc = 0x10000 in
  let edited_pc =
    match Hashtbl.find_opt (E.edited_address_map p.Qpt2.exec) mov_pc with
    | Some a -> a
    | None -> Alcotest.failf "no edited address for 0x%x" mov_pc
  in
  (match Sef.fetch32 p.Qpt2.edited edited_pc with
  | None -> Alcotest.failf "no word at edited 0x%x" edited_pc
  | Some w ->
      if not (Sef.patch32 p.Qpt2.edited edited_pc (w lxor 0xF)) then
        Alcotest.fail "patch failed");
  let store_pc =
    let r = execute_ok exe in
    match
      Array.to_list r.Dx.r_events
      |> List.find_map (function
           | Emu.Ob_store { pc; _ } -> Some pc
           | _ -> None)
    with
    | Some pc -> pc
    | None -> Alcotest.fail "no store event in the original run"
  in
  match
    Dx.verify_edit
      ~norm_b:(E.inverse_address_norm p.Qpt2.exec)
      ~contract:(Qpt2.contract p) exe p.Qpt2.edited
  with
  | Error e -> Alcotest.failf "oracle: %s" (Diag.error_message e)
  | Ok er -> (
      let rp = er.Dx.er_report in
      (match rp.Dx.rp_verdict with
      | Dx.Diverged Dx.D_value -> ()
      | v -> Alcotest.failf "verdict: %s" (Dx.verdict_name v));
      match rp.Dx.rp_divergence with
      | None -> Alcotest.fail "missing divergence detail"
      | Some dv ->
          Alcotest.(check int) "anchored at the program store" store_pc
            dv.Dx.dv_pc)

let test_violation_broken_check () =
  (* event streams match but the instrumentation's own promise is false:
     the post-run check demotes the verdict *)
  let exe = assemble store_loop_src in
  let p = Qpt2.instrument mach exe in
  let lying =
    {
      (Qpt2.contract p) with
      Contract.ct_checks =
        [
          {
            Contract.ck_name = "always-wrong";
            ck_run = (fun ~profile:_ ~mem:_ -> Error "promise broken");
          };
        ];
    }
  in
  match
    Dx.verify_edit
      ~norm_b:(E.inverse_address_norm p.Qpt2.exec)
      ~contract:lying exe p.Qpt2.edited
  with
  | Error e -> Alcotest.failf "oracle: %s" (Diag.error_message e)
  | Ok er -> (
      Alcotest.(check string) "verdict" "contract-violation"
        (Dx.verdict_name er.Dx.er_report.Dx.rp_verdict);
      match er.Dx.er_report.Dx.rp_divergence with
      | Some dv ->
          Alcotest.(check string) "check named in the report"
            "check always-wrong: promise broken" dv.Dx.dv_what
      | None -> Alcotest.fail "missing divergence detail")

(* ------------------------------------------------------------------ *)
(* Machine-readable verdicts                                           *)
(* ------------------------------------------------------------------ *)

let test_report_json_well_formed () =
  let exe = assemble (List.assoc "countdown" Corpus.sources) in
  let ap = apply_ok "qpt2" exe in
  let er = verify_ok ap exe in
  let s = Dx.report_to_json ~masked:er.Dx.er_masked er.Dx.er_report in
  match Json.parse s with
  | Error m -> Alcotest.failf "bad JSON: %s (%s)" m s
  | Ok j -> (
      (match Json.member "verdict" j with
      | Some (Json.Str v) -> Alcotest.(check string) "verdict" "equivalent" v
      | _ -> Alcotest.fail "no verdict member");
      (match Json.member "masked" j with
      | Some (Json.Num f) ->
          Alcotest.(check int) "masked" er.Dx.er_masked (int_of_float f)
      | _ -> Alcotest.fail "no masked member");
      match Json.member "divergence" j with
      | Some Json.Null -> ()
      | _ -> Alcotest.fail "divergence should be null")

let test_violation_json_carries_divergence () =
  let exe = assemble store_loop_src in
  let p = Qpt2.instrument mach exe in
  let forged = Contract.make "qpt2" ~red_zone:Eel.Snippet.red_zone in
  match
    Dx.verify_edit
      ~norm_b:(E.inverse_address_norm p.Qpt2.exec)
      ~contract:forged exe p.Qpt2.edited
  with
  | Error e -> Alcotest.failf "oracle: %s" (Diag.error_message e)
  | Ok er -> (
      let s = Dx.report_to_json ~masked:er.Dx.er_masked er.Dx.er_report in
      match Json.parse s with
      | Error m -> Alcotest.failf "bad JSON: %s" m
      | Ok j -> (
          match Json.member "divergence" j with
          | Some (Json.Obj _ as dv) -> (
              match Json.member "class" dv with
              | Some (Json.Str c) ->
                  Alcotest.(check string) "class" "contract" c
              | _ -> Alcotest.fail "no class member")
          | _ -> Alcotest.fail "violation report lacks a divergence object"))

let () =
  Alcotest.run "equiv"
    [
      ( "contract-mask",
        [
          Alcotest.test_case "regions and spans" `Quick test_regions;
          Alcotest.test_case "red zone and traps" `Quick test_red_zone_and_traps;
          Alcotest.test_case "post-hoc masking" `Quick test_mask_events;
          Alcotest.test_case "first failing check" `Quick
            test_run_checks_first_failure;
        ] );
      ( "record-time-filter",
        [
          Alcotest.test_case "masks at record time" `Quick
            test_obs_filter_masks_at_record_time;
          Alcotest.test_case "terminal events exempt" `Quick
            test_obs_filter_never_masks_terminal_events;
        ] );
      ( "masked-equivalence",
        [
          Alcotest.test_case "corpus x {qpt2,tracer,sfi}" `Quick
            test_corpus_masked_equivalence;
          Alcotest.test_case "qpt2 masks counter traffic" `Quick
            test_qpt2_masks_counter_traffic;
          Alcotest.test_case "oldqpt, amemory, optprof" `Quick
            test_remaining_tools_equivalent;
          Alcotest.test_case "publishes eel.equiv metrics" `Quick
            test_equiv_metrics_published;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "counters match ground truth" `Quick
            test_qpt2_counts_cross_validate;
          Alcotest.test_case "check runs under the oracle" `Quick
            test_qpt2_check_runs_under_oracle;
        ] );
      ( "seeded-violations",
        [
          Alcotest.test_case "counter outside declared range" `Quick
            test_violation_counter_outside_declared_range;
          Alcotest.test_case "clobbered program store" `Quick
            test_violation_clobbered_program_store;
          Alcotest.test_case "broken post-run check" `Quick
            test_violation_broken_check;
        ] );
      ( "json",
        [
          Alcotest.test_case "equivalent report" `Quick
            test_report_json_well_formed;
          Alcotest.test_case "violation report" `Quick
            test_violation_json_carries_divergence;
        ] );
    ]
