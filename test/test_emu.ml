(* Tests for the SPARC emulator: arithmetic, condition codes, memory,
   delayed control transfers (including annul semantics — the behaviours
   EEL's CFG normalization must mirror), system calls, and faults. *)

module Sef = Eel_sef.Sef
open Eel_sparc
module Emu = Eel_emu.Emu

let run src =
  match Asm.assemble src with
  | Error m -> Alcotest.failf "assembly failed: %s" m
  | Ok exe -> fst (Emu.run_exe exe)

let check_out src expected =
  let r = run src in
  Alcotest.(check string) "output" expected r.Emu.out;
  r

let exit0 = "        mov 0, %o0\n        ta 1\n        nop\n"

let test_arith () =
  let r =
    check_out
      ({|
main:   mov 6, %l0
        mov 7, %l1
        smul %l0, %l1, %l2
        mov %l2, %o0
        ta 2
|}
      ^ exit0)
      "42\n"
  in
  Alcotest.(check int) "exit code" 0 r.Emu.exit_code

let test_neg_values () =
  ignore
    (check_out
       ({|
main:   mov 10, %l0
        sub %g0, %l0, %l1       ! -10
        mov %l1, %o0
        ta 2
        sra %l1, 1, %o0         ! -5
        ta 2
|}
       ^ exit0)
       "-10\n-5\n")

let test_cc_branches () =
  (* count down from 5, printing each value: exercises subcc + bne *)
  ignore
    (check_out
       ({|
main:   mov 5, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
       ^ exit0)
       "5\n4\n3\n2\n1\n")

let test_unsigned_branches () =
  (* bgu/bleu on values with the sign bit set *)
  ignore
    (check_out
       ({|
main:   set 0x80000000, %l0
        cmp %l0, 1
        bgu Lbig
        nop
        mov 0, %o0
        ba Lout
        nop
Lbig:   mov 1, %o0
Lout:   ta 2
|}
       ^ exit0)
       "1\n")

let test_delay_slot_executes () =
  (* the instruction in a non-annulled taken branch's delay slot executes *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        ba Lnext
        add %l0, 10, %l0        ! delay slot: executes
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "11\n")

let test_annulled_taken () =
  (* bcc,a: delay slot executes when the branch is taken *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        cmp %l0, 1
        be,a Lnext
        add %l0, 10, %l0        ! executes (taken)
        add %l0, 100, %l0       ! skipped
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "11\n")

let test_annulled_untaken () =
  (* bcc,a: delay slot squashed when the branch falls through *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        cmp %l0, 2
        be,a Lnext
        add %l0, 10, %l0        ! annulled (untaken)
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "1\n")

let test_ba_annulled () =
  (* ba,a: delay slot never executes *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        ba,a Lnext
        add %l0, 10, %l0        ! annulled always
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "1\n")

let test_call_and_return () =
  ignore
    (check_out
       ({|
main:   call double
        mov 21, %o0             ! delay slot sets the argument
        ta 2
|}
       ^ exit0
       ^ {|
double: retl
        add %o0, %o0, %o0       ! delay slot computes the result
|})
       "42\n")

let test_call_delay_after_call () =
  (* the delay slot of a call executes before the callee *)
  ignore
    (check_out
       ({|
main:   mov 1, %o0
        call show
        add %o0, 1, %o0         ! executes first: callee sees 2
        mov 9, %o0
        ta 2
|}
       ^ exit0
       ^ {|
show:   mov %o0, %o1
        mov %o1, %o0
        ta 2
        retl
        nop
|})
       "2\n9\n")

let test_memory () =
  ignore
    (check_out
       ({|
main:   set buf, %l0
        mov 258, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
        sth %l1, [%l0 + 8]
        lduh [%l0 + 8], %o0
        ta 2
        stb %l1, [%l0 + 12]
        ldub [%l0 + 12], %o0
        ta 2
        mov -1, %l2
        stb %l2, [%l0 + 13]
        ldsb [%l0 + 13], %o0
        ta 2
|}
       ^ exit0 ^ {|
        .bss
        .align 8
buf:    .space 32
|})
       "258\n258\n2\n-1\n")

let test_ldd_std () =
  ignore
    (check_out
       ({|
main:   set buf, %l0
        mov 7, %l2
        mov 9, %l3
        std %l2, [%l0]
        ldd [%l0], %o2
        mov %o2, %o0
        ta 2
        mov %o3, %o0
        ta 2
|}
       ^ exit0 ^ {|
        .data
        .align 8
buf:    .word 0, 0
|})
       "7\n9\n")

let test_jump_table_dispatch () =
  ignore
    (check_out
       ({|
main:   mov 1, %o0              ! select case 1
        set table, %l0
        sll %o0, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
c0:     mov 100, %o0
        ba Lend
        nop
c1:     mov 200, %o0
        ba Lend
        nop
Lend:   ta 2
|}
       ^ exit0 ^ {|
        .data
        .align 4
table:  .word c0, c1
|})
       "200\n")

let test_write_syscall () =
  ignore
    (check_out
       ({|
main:   set msg, %o0
        mov 6, %o1
        ta 4
|}
       ^ exit0 ^ {|
        .data
msg:    .ascii "hello\n"
|})
       "hello\n")

let test_cycles_syscall () =
  let r = run ({|
main:   ta 7
        mov %o0, %l0
        ta 7
        sub %o0, %l0, %o0
        ta 2
|} ^ exit0) in
  (* two instructions elapse between the two reads: mov and the second ta *)
  Alcotest.(check string) "cycle delta" "2\n" r.Emu.out

let test_recursion () =
  (* fib(10) = 89 (with fib(0) = fib(1) = 1) using an explicit stack *)
  ignore
    (check_out
       ({|
main:   mov 10, %o0
        call fib
        nop
        ta 2
|}
       ^ exit0
       ^ {|
fib:    cmp %o0, 2
        bl Lbase
        nop
        sub %sp, 16, %sp
        st %o7, [%sp]
        st %o0, [%sp + 4]
        call fib
        sub %o0, 1, %o0
        st %o0, [%sp + 8]
        ld [%sp + 4], %o0
        call fib
        sub %o0, 2, %o0
        ld [%sp + 8], %o1
        add %o0, %o1, %o0
        ld [%sp], %o7
        add %sp, 16, %sp
        retl
        nop
Lbase:  retl
        mov 1, %o0
|})
       "89\n")

let test_counters () =
  let r = run ({|
main:   set buf, %l0
        ld [%l0], %l1
        st %l1, [%l0 + 4]
        ld [%l0 + 4], %l2
|} ^ exit0 ^ "\n .data\n .align 4\nbuf: .word 5, 0\n") in
  Alcotest.(check int) "loads" 2 r.Emu.loads;
  Alcotest.(check int) "stores" 1 r.Emu.stores;
  Alcotest.(check int) "insns" 7 r.Emu.insns

let test_fault_illegal () =
  let exe =
    match Asm.assemble "main: .word 0\n nop\n" with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe exe with
  | exception Emu.Fault _ -> ()
  | _ -> Alcotest.fail "expected illegal-instruction fault"

let test_fault_misaligned () =
  let exe =
    match
      Asm.assemble "main: set buf, %l0\n ld [%l0 + 2], %l1\n nop\n .data\nbuf: .word 0"
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe exe with
  | exception Emu.Fault msg ->
      Alcotest.(check bool) "mentions misaligned" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected alignment fault"

let test_fault_wild_pc () =
  let exe =
    match Asm.assemble "main: jmp %g0 + 0\n nop\n nop\n" with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe exe with
  | exception Emu.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault jumping to 0"

let test_out_of_fuel () =
  let exe =
    match Asm.assemble "main: ba main\n nop\n" with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe ~fuel:1000 exe with
  | exception Emu.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_event_hook () =
  let exe =
    match
      Asm.assemble
        ("main: set buf, %l0\n st %g0, [%l0]\n ld [%l0], %l1\n" ^ exit0
       ^ " .data\n .align 4\nbuf: .word 1")
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let loads = ref 0 and stores = ref 0 and execs = ref 0 in
  let hook = function
    | Emu.Ev_load _ -> incr loads
    | Emu.Ev_store _ -> incr stores
    | Emu.Ev_exec _ -> incr execs
  in
  let r, _ = Emu.run_exe ~hook exe in
  Alcotest.(check int) "hook loads" 1 !loads;
  Alcotest.(check int) "hook stores" 1 !stores;
  Alcotest.(check int) "hook execs" r.Emu.insns !execs

let test_y_register () =
  (* umul writes Y with the high half *)
  ignore
    (check_out
       ({|
main:   set 0x10000, %l0
        umul %l0, %l0, %l1      ! 2^32: low word 0, Y = 1
        rd %y, %o0
        ta 2
        mov %l1, %o0
        ta 2
|}
       ^ exit0)
       "1\n0\n")

(* ---- the predecoded fast path (ISSUE 5) ----

   [Emu.load] decodes the text segment once into a dense instruction
   array; stores into text re-decode the clobbered word. These tests pin
   the contract: predecoded and decode-per-step execution are observably
   identical, including under self-modifying code and on faults. *)

let run_mode ~predecode src =
  match Asm.assemble src with
  | Error m -> Alcotest.failf "assembly failed: %s" m
  | Ok exe -> fst (Emu.run_exe ~predecode exe)

let check_same_both_modes src =
  let a = run_mode ~predecode:true src
  and b = run_mode ~predecode:false src in
  Alcotest.(check string) "same output" b.Emu.out a.Emu.out;
  Alcotest.(check int) "same insns" b.Emu.insns a.Emu.insns;
  Alcotest.(check int) "same loads" b.Emu.loads a.Emu.loads;
  Alcotest.(check int) "same stores" b.Emu.stores a.Emu.stores;
  Alcotest.(check int) "same exit code" b.Emu.exit_code a.Emu.exit_code;
  a

(* or %g0, imm, %o0 — i.e. "mov imm, %o0" *)
let mov_imm_o0 imm =
  Insn.encode (Insn.Alu { op = Insn.Or; rs1 = 0; op2 = Insn.O_imm imm; rd = 8 })

let test_predecode_equiv () =
  List.iter
    (fun src -> ignore (check_same_both_modes src))
    [
      ({|
main:   mov 5, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
      ^ exit0);
      ({|
main:   set buf, %l0
        mov 7, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
|}
      ^ exit0 ^ "        .data\n        .align 4\nbuf:    .word 0\n");
    ]

(* shared with the tier-2 suite below: the same self-modifying programs
   must also invalidate compiled blocks *)
let selfmod_word_src =
  Printf.sprintf
    {|
main:   set Lpatch, %%l0
        set 0x%x, %%l1
        st %%l1, [%%l0]
Lpatch: mov 1, %%o0
        ta 2
|}
    (mov_imm_o0 42)
  ^ exit0

let selfmod_byte_src =
  {|
main:   set Lpatch, %l0
        mov 0x2a, %l1
        stb %l1, [%l0 + 3]
Lpatch: mov 1, %o0
        ta 2
|}
  ^ exit0

let test_predecode_selfmod_word () =
  (* a full-word store over an instruction in the program's own text: the
     predecoded path must re-decode the patched word before re-executing
     it, matching decode-per-step exactly *)
  let r = check_same_both_modes selfmod_word_src in
  Alcotest.(check string) "patched instruction executed" "42\n" r.Emu.out

let test_predecode_selfmod_byte () =
  (* sub-word invalidation: a single-byte store into the low byte of an
     instruction word must also invalidate the predecoded entry *)
  Alcotest.(check int)
    "encodings differ only in the immediate byte" (mov_imm_o0 42)
    (mov_imm_o0 1 land lnot 0xFF lor 0x2a);
  let r = check_same_both_modes selfmod_byte_src in
  Alcotest.(check string) "byte-patched instruction executed" "42\n" r.Emu.out

let test_predecode_outside_text () =
  (* jumping into .data exercises the decode-per-step fallback: those pcs
     are outside the predecoded window, so fetch must fall back without
     faulting *)
  let w v = Printf.sprintf "0x%x" (Insn.encode v) in
  let ta n = Insn.Ticc { cond = Insn.CA; rs1 = 0; op2 = Insn.O_imm n } in
  let src =
    Printf.sprintf
      {|
main:   set Lcode, %%l0
        jmp %%l0
        nop
        .data
        .align 4
Lcode:  .word 0x%x, %s, 0x%x, %s, %s
|}
      (mov_imm_o0 42) (w (ta 2)) (mov_imm_o0 0) (w (ta 1)) (w Insn.nop)
  in
  let r = check_same_both_modes src in
  Alcotest.(check string) "ran code from the data segment" "42\n" r.Emu.out

let test_predecode_fault_parity () =
  (* decode of an invalid word must not fault at load time (predecode
     scans all of text); both modes fault identically at execution *)
  let fault ~predecode =
    match Asm.assemble "main:   .word 0\n        nop\n" with
    | Error m -> Alcotest.failf "asm: %s" m
    | Ok exe -> (
        match Emu.run_exe ~predecode exe with
        | exception Emu.Fault m -> m
        | _ -> Alcotest.fail "expected illegal-instruction fault")
  in
  Alcotest.(check string) "identical fault message" (fault ~predecode:false)
    (fault ~predecode:true)

(* ---- fuel boundaries and fault pokes (ISSUE 6) ----

   The differential oracle trusts that fuel exhaustion is observably
   identical in every execution tier: the terminating Ob_fuel event (and
   everything before it) must match at EVERY cutoff, including fuel that
   runs out between a branch and its delay slot, and including cutoffs
   that land in the middle of a tier-2 compiled block (the block-entry
   fuel gate must keep those in the interpreter). These tests sweep
   every boundary of a looping program rather than spot-checking one. *)

module Tier2 = Eel_emu.Tier2

let assemble_exe src =
  match Asm.assemble src with
  | Ok e -> e
  | Error m -> Alcotest.failf "asm: %s" m

(* threshold 1 so even a block entered twice runs compiled — the tests
   exercise the tier-2 path without needing long warmup loops *)
let load_tier ~tier exe =
  let t = Emu.load ~predecode:(tier <> Tier2.Interp) exe in
  let eng = if tier = Tier2.Block then Tier2.attach ~threshold:1 t else None in
  (t, eng)

let events_with_fuel ~tier ~fuel exe =
  let t, _ = load_tier ~tier exe in
  let log = Emu.obs_log () in
  Emu.set_obs t (Some log);
  let stop =
    match Emu.run ~fuel t with
    | r -> Printf.sprintf "exit %d" r.Emu.exit_code
    | exception Emu.Out_of_fuel -> "fuel"
    | exception Emu.Fault m -> "fault: " ^ m
  in
  ( List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log),
    Emu.insns_executed t,
    Emu.registers t,
    stop )

let fuel_parity_src =
  {|
main:   mov 3, %l0
        set buf, %l2
Lloop:  st %l0, [%l2]
        mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
        mov 0, %o0
        ta 1
        nop
        .data
        .align 4
buf:    .word 0
|}

let test_fuel_boundary_parity () =
  let exe =
    match Asm.assemble fuel_parity_src with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  (* full length first, then every fuel cutoff 1..n+1: each prefix of the
     event log, the Ob_fuel terminator's pc, the final register file and
     the stop condition must be tier-independent — in particular at the
     cutoffs that split a bne from its delay slot, and at every cutoff
     that falls inside a compiled block's worst-case span *)
  let full = run_mode ~predecode:true fuel_parity_src in
  let n = full.Emu.insns in
  for fuel = 1 to n + 1 do
    let eb, ib, rb, sb = events_with_fuel ~tier:Tier2.Interp ~fuel exe in
    List.iter
      (fun tr ->
        let chk what =
          Printf.sprintf "%s %s at fuel %d" (Tier2.tier_name tr) what fuel
        in
        let ea, ia, ra, sa = events_with_fuel ~tier:tr ~fuel exe in
        Alcotest.(check string) (chk "stop") sb sa;
        Alcotest.(check int) (chk "insns") ib ia;
        Alcotest.(check (list string)) (chk "events") eb ea;
        Alcotest.(check (array int)) (chk "registers") rb ra)
      [ Tier2.Predecode; Tier2.Block ]
  done

let test_poke_mode_parity () =
  (* overwrite the loop body's [mov %l0, %o0] (entry+0x10) with
     [mov 99, %o0] after the first iteration: later iterations must print
     99, and the predecoded instruction array must pick the new word up at
     the same instruction boundary as decode-per-step execution *)
  let exe =
    match Asm.assemble fuel_parity_src with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let run_poked ~predecode pokes =
    let t = Emu.load ~predecode exe in
    let log = Emu.obs_log () in
    Emu.set_obs t (Some log);
    Emu.set_pokes t pokes;
    (match Emu.run t with
    | exception Emu.Fault _ -> ()
    | _ -> ());
    List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log)
  in
  let pokes =
    [ { Emu.pk_at = 7; pk_addr = exe.Sef.entry + 0x10; pk_value = mov_imm_o0 99 } ]
  in
  let poked = run_poked ~predecode:true pokes in
  Alcotest.(check (list string))
    "poked run identical across modes"
    (run_poked ~predecode:false pokes)
    poked;
  if poked = run_poked ~predecode:true [] then
    Alcotest.fail "poke had no observable effect"

let test_poke_invalid_dropped () =
  (* hostile poke plans — negative, misaligned, out of range, overflowing —
     must be silently dropped: same observable run as no pokes at all *)
  let exe =
    match Asm.assemble fuel_parity_src with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let run_with pokes =
    let t = Emu.load exe in
    let log = Emu.obs_log () in
    Emu.set_obs t (Some log);
    Emu.set_pokes t pokes;
    ignore (Emu.run t);
    List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log)
  in
  let clean = run_with [] in
  let hostile =
    [
      { Emu.pk_at = 0; pk_addr = -4; pk_value = 1 };
      { Emu.pk_at = 1; pk_addr = 3; pk_value = 1 };
      { Emu.pk_at = 2; pk_addr = max_int - 3; pk_value = 1 };
      { Emu.pk_at = 3; pk_addr = 1 lsl 30; pk_value = 1 };
    ]
  in
  Alcotest.(check (list string)) "hostile pokes are no-ops" clean
    (run_with hostile)

(* ---- tier-2: block compilation with OSR deopt (ISSUE 10) ----

   [Tier2.attach] compiles hot basic blocks into chained closures; any
   mid-block condition the closures can't handle transfers pc/npc/ninsns
   back to the tier-1 interpreter at an instruction boundary (OSR).
   These tests pin the contract from the outside: across all three tiers
   the observable run — stop condition, event log, instruction count,
   final registers, output — is identical, including through deopts at
   every boundary of a chained block pair and under stores into compiled
   text. *)

let run_tier ~tier src =
  let t, eng = load_tier ~tier (assemble_exe src) in
  let log = Emu.obs_log () in
  Emu.set_obs t (Some log);
  let stop =
    match Emu.run t with
    | r -> Printf.sprintf "exit %d" r.Emu.exit_code
    | exception Emu.Fault m -> "fault: " ^ m
    | exception Emu.Out_of_fuel -> "fuel"
  in
  ( stop,
    List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log),
    Emu.insns_executed t,
    Emu.registers t,
    Emu.output t,
    eng )

(* Run [src] under all three tiers, demand an identical observable run,
   and return the tier-2 engine's stats for structural assertions. *)
let check_tiers_agree name src =
  let sb, eb, ib, rb, ob, _ = run_tier ~tier:Tier2.Interp src in
  let check tr =
    let chk what =
      Printf.sprintf "%s [%s] %s" name (Tier2.tier_name tr) what
    in
    let sa, ea, ia, ra, oa, eng = run_tier ~tier:tr src in
    Alcotest.(check string) (chk "stop") sb sa;
    Alcotest.(check (list string)) (chk "events") eb ea;
    Alcotest.(check int) (chk "insns") ib ia;
    Alcotest.(check (array int)) (chk "registers") rb ra;
    Alcotest.(check string) (chk "output") ob oa;
    eng
  in
  ignore (check Tier2.Predecode);
  match check Tier2.Block with
  | Some st -> Tier2.stats st
  | None -> Alcotest.failf "%s: tier-2 engine failed to attach" name

let test_tier_parity () =
  (* a spread of control shapes; each must actually run compiled code *)
  let jump_table_src =
    {|
main:   mov 1, %o0
        set table, %l0
        sll %o0, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
c0:     mov 100, %o0
        ba Lend
        nop
c1:     mov 200, %o0
        ba Lend
        nop
Lend:   ta 2
|}
    ^ exit0
    ^ "        .data\n        .align 4\ntable:  .word c0, c1\n"
  in
  let annul_src =
    {|
main:   mov 3, %l0
Lloop:  cmp %l0, 1
        be,a Ldone
        mov 99, %o1             ! executes only on the taken exit
        subcc %l0, 1, %l0
        ba Lloop
        nop
Ldone:  mov %o1, %o0
        ta 2
|}
    ^ exit0
  in
  let widths_src =
    {|
main:   mov 4, %l0
        set buf, %l2
Lloop:  std %l0, [%l2]
        ldd [%l2], %o2
        sth %l0, [%l2 + 8]
        ldsh [%l2 + 8], %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        stb %l0, [%l2 + 10]
|}
    ^ exit0
    ^ "        .data\n        .align 8\nbuf:    .word 0, 0, 0\n"
  in
  List.iter
    (fun (name, src) ->
      let st = check_tiers_agree name src in
      Alcotest.(check bool)
        (name ^ ": compiled blocks ran")
        true
        (st.Tier2.st_block_runs >= 1))
    [
      ("countdown", fuel_parity_src);
      ("jump-table", jump_table_src);
      ("annul-loop", annul_src);
      ("mem-widths", widths_src);
    ]

(* OSR state transfer, swept over every boundary of a chained block
   pair. The loop body is two blocks (A: subcc + two slots + ba/delay;
   B: two slots + cmp + bne/delay); a udiv divides by %l0, which the
   subcc drives 2 -> 1 -> 0, so the poison slot divides cleanly on the
   warmup iteration (compiling and chaining both blocks) and faults on
   the second, by then fully inside compiled code. The deopt must
   replay the udiv in tier-1 and fault with an identical event log,
   instruction count and register file, wherever the poison sits. *)
let osr_src ~poison =
  let slot i =
    if i = poison then "        udiv %l2, %l0, %l3\n"
    else Printf.sprintf "        add %%l4, %d, %%l4\n" (i + 1)
  in
  "main:   mov 2, %l0\n        mov 7, %l2\n        mov 0, %l4\n"
  ^ "Lloop:  subcc %l0, 1, %l0\n" ^ slot 0 ^ slot 1 ^ "        ba Lb\n"
  ^ slot 2 (* A's delay slot *) ^ "Lb:\n" ^ slot 3 ^ slot 4
  ^ "        cmp %l0, 0\n        bne Lloop\n"
  ^ slot 5 (* B's delay slot (untaken on the faulting iteration) *)
  ^ exit0

let test_tier_osr_boundaries () =
  for poison = 0 to 5 do
    let name = Printf.sprintf "poison at slot %d" poison in
    let st = check_tiers_agree name (osr_src ~poison) in
    Alcotest.(check bool) (name ^ ": deopted") true (st.Tier2.st_deopts >= 1);
    Alcotest.(check bool)
      (name ^ ": blocks chained")
      true
      (st.Tier2.st_links >= 1)
  done

let test_tier_selfmod_suite () =
  (* the st/stb self-modify programs from the predecode suite: a store
     into an already-compiled block must invalidate the closure, and the
     patched instruction must execute *)
  List.iter
    (fun (name, src) ->
      let st = check_tiers_agree name src in
      Alcotest.(check bool)
        (name ^ ": compiled block invalidated")
        true
        (st.Tier2.st_invalidated >= 1))
    [ ("selfmod-word", selfmod_word_src); ("selfmod-byte", selfmod_byte_src) ]

let test_tier_invalidate_chained () =
  (* block B stores block A's own first word back into A every iteration
     (same value, so semantics are unchanged): each store must kill A's
     compiled closure, sever B's chain slot into it, and force a
     recompile on the next arrival *)
  let src =
    {|
main:   mov 4, %l0
        set Lhead, %l2
        ld [%l2], %l3
Lhead:  add %l4, 1, %l4
        ba Lb
        nop
Lb:     st %l3, [%l2]
        subcc %l0, 1, %l0
        bne Lhead
        nop
|}
    ^ exit0
  in
  let st = check_tiers_agree "rewrite-chained" src in
  Alcotest.(check bool)
    "blocks invalidated" true
    (st.Tier2.st_invalidated >= 2);
  Alcotest.(check bool) "chain slots severed" true (st.Tier2.st_unlinked >= 1);
  Alcotest.(check bool)
    "recompiled after invalidation" true
    (st.Tier2.st_compiled > st.Tier2.st_live)

let test_tier_selfstore_deopt () =
  (* a store into the block currently executing: the engine must finish
     the store, OSR out at the next boundary (the closure is stale), and
     resume in tier-1 — every loop iteration *)
  let src =
    {|
main:   mov 3, %l0
        set Lself, %l2
        ld [%l2], %l3
Lloop:  st %l3, [%l2]
Lself:  add %l4, 1, %l4
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
    ^ exit0
  in
  let st = check_tiers_agree "self-store" src in
  Alcotest.(check bool) "deopted mid-block" true (st.Tier2.st_deopts >= 1);
  Alcotest.(check bool)
    "invalidated itself" true
    (st.Tier2.st_invalidated >= 1)

let () =
  Alcotest.run "emu"
    [
      ( "alu",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "negative values" `Quick test_neg_values;
          Alcotest.test_case "condition codes" `Quick test_cc_branches;
          Alcotest.test_case "unsigned compares" `Quick test_unsigned_branches;
          Alcotest.test_case "y register" `Quick test_y_register;
        ] );
      ( "delay-slots",
        [
          Alcotest.test_case "delay slot executes" `Quick test_delay_slot_executes;
          Alcotest.test_case "annulled taken" `Quick test_annulled_taken;
          Alcotest.test_case "annulled untaken" `Quick test_annulled_untaken;
          Alcotest.test_case "ba,a" `Quick test_ba_annulled;
          Alcotest.test_case "call+return" `Quick test_call_and_return;
          Alcotest.test_case "call delay order" `Quick test_call_delay_after_call;
        ] );
      ( "memory",
        [
          Alcotest.test_case "widths" `Quick test_memory;
          Alcotest.test_case "ldd/std" `Quick test_ldd_std;
          Alcotest.test_case "jump table" `Quick test_jump_table_dispatch;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "write" `Quick test_write_syscall;
          Alcotest.test_case "cycles" `Quick test_cycles_syscall;
          Alcotest.test_case "recursion" `Quick test_recursion;
        ] );
      ( "faults",
        [
          Alcotest.test_case "illegal instruction" `Quick test_fault_illegal;
          Alcotest.test_case "misaligned access" `Quick test_fault_misaligned;
          Alcotest.test_case "wild jump" `Quick test_fault_wild_pc;
          Alcotest.test_case "fuel" `Quick test_out_of_fuel;
          Alcotest.test_case "event hook" `Quick test_event_hook;
        ] );
      ( "predecode",
        [
          Alcotest.test_case "mode equivalence" `Quick test_predecode_equiv;
          Alcotest.test_case "self-modifying word store" `Quick
            test_predecode_selfmod_word;
          Alcotest.test_case "self-modifying byte store" `Quick
            test_predecode_selfmod_byte;
          Alcotest.test_case "execution outside text" `Quick
            test_predecode_outside_text;
          Alcotest.test_case "fault parity" `Quick test_predecode_fault_parity;
        ] );
      ( "fuel-and-pokes",
        [
          Alcotest.test_case "fuel boundary parity (three tiers)" `Quick
            test_fuel_boundary_parity;
          Alcotest.test_case "poke mode parity" `Quick test_poke_mode_parity;
          Alcotest.test_case "invalid pokes dropped" `Quick
            test_poke_invalid_dropped;
        ] );
      ( "tier2",
        [
          Alcotest.test_case "three-tier parity" `Quick test_tier_parity;
          Alcotest.test_case "osr at every block boundary" `Quick
            test_tier_osr_boundaries;
          Alcotest.test_case "self-modify invalidates blocks" `Quick
            test_tier_selfmod_suite;
          Alcotest.test_case "invalidation severs chains" `Quick
            test_tier_invalidate_chained;
          Alcotest.test_case "self-store deopts" `Quick
            test_tier_selfstore_deopt;
        ] );
    ]
