(* Tests for the SPARC emulator: arithmetic, condition codes, memory,
   delayed control transfers (including annul semantics — the behaviours
   EEL's CFG normalization must mirror), system calls, and faults. *)

module Sef = Eel_sef.Sef
open Eel_sparc
module Emu = Eel_emu.Emu

let run src =
  match Asm.assemble src with
  | Error m -> Alcotest.failf "assembly failed: %s" m
  | Ok exe -> fst (Emu.run_exe exe)

let check_out src expected =
  let r = run src in
  Alcotest.(check string) "output" expected r.Emu.out;
  r

let exit0 = "        mov 0, %o0\n        ta 1\n        nop\n"

let test_arith () =
  let r =
    check_out
      ({|
main:   mov 6, %l0
        mov 7, %l1
        smul %l0, %l1, %l2
        mov %l2, %o0
        ta 2
|}
      ^ exit0)
      "42\n"
  in
  Alcotest.(check int) "exit code" 0 r.Emu.exit_code

let test_neg_values () =
  ignore
    (check_out
       ({|
main:   mov 10, %l0
        sub %g0, %l0, %l1       ! -10
        mov %l1, %o0
        ta 2
        sra %l1, 1, %o0         ! -5
        ta 2
|}
       ^ exit0)
       "-10\n-5\n")

let test_cc_branches () =
  (* count down from 5, printing each value: exercises subcc + bne *)
  ignore
    (check_out
       ({|
main:   mov 5, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
       ^ exit0)
       "5\n4\n3\n2\n1\n")

let test_unsigned_branches () =
  (* bgu/bleu on values with the sign bit set *)
  ignore
    (check_out
       ({|
main:   set 0x80000000, %l0
        cmp %l0, 1
        bgu Lbig
        nop
        mov 0, %o0
        ba Lout
        nop
Lbig:   mov 1, %o0
Lout:   ta 2
|}
       ^ exit0)
       "1\n")

let test_delay_slot_executes () =
  (* the instruction in a non-annulled taken branch's delay slot executes *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        ba Lnext
        add %l0, 10, %l0        ! delay slot: executes
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "11\n")

let test_annulled_taken () =
  (* bcc,a: delay slot executes when the branch is taken *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        cmp %l0, 1
        be,a Lnext
        add %l0, 10, %l0        ! executes (taken)
        add %l0, 100, %l0       ! skipped
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "11\n")

let test_annulled_untaken () =
  (* bcc,a: delay slot squashed when the branch falls through *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        cmp %l0, 2
        be,a Lnext
        add %l0, 10, %l0        ! annulled (untaken)
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "1\n")

let test_ba_annulled () =
  (* ba,a: delay slot never executes *)
  ignore
    (check_out
       ({|
main:   mov 1, %l0
        ba,a Lnext
        add %l0, 10, %l0        ! annulled always
Lnext:  mov %l0, %o0
        ta 2
|}
       ^ exit0)
       "1\n")

let test_call_and_return () =
  ignore
    (check_out
       ({|
main:   call double
        mov 21, %o0             ! delay slot sets the argument
        ta 2
|}
       ^ exit0
       ^ {|
double: retl
        add %o0, %o0, %o0       ! delay slot computes the result
|})
       "42\n")

let test_call_delay_after_call () =
  (* the delay slot of a call executes before the callee *)
  ignore
    (check_out
       ({|
main:   mov 1, %o0
        call show
        add %o0, 1, %o0         ! executes first: callee sees 2
        mov 9, %o0
        ta 2
|}
       ^ exit0
       ^ {|
show:   mov %o0, %o1
        mov %o1, %o0
        ta 2
        retl
        nop
|})
       "2\n9\n")

let test_memory () =
  ignore
    (check_out
       ({|
main:   set buf, %l0
        mov 258, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
        sth %l1, [%l0 + 8]
        lduh [%l0 + 8], %o0
        ta 2
        stb %l1, [%l0 + 12]
        ldub [%l0 + 12], %o0
        ta 2
        mov -1, %l2
        stb %l2, [%l0 + 13]
        ldsb [%l0 + 13], %o0
        ta 2
|}
       ^ exit0 ^ {|
        .bss
        .align 8
buf:    .space 32
|})
       "258\n258\n2\n-1\n")

let test_ldd_std () =
  ignore
    (check_out
       ({|
main:   set buf, %l0
        mov 7, %l2
        mov 9, %l3
        std %l2, [%l0]
        ldd [%l0], %o2
        mov %o2, %o0
        ta 2
        mov %o3, %o0
        ta 2
|}
       ^ exit0 ^ {|
        .data
        .align 8
buf:    .word 0, 0
|})
       "7\n9\n")

let test_jump_table_dispatch () =
  ignore
    (check_out
       ({|
main:   mov 1, %o0              ! select case 1
        set table, %l0
        sll %o0, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
c0:     mov 100, %o0
        ba Lend
        nop
c1:     mov 200, %o0
        ba Lend
        nop
Lend:   ta 2
|}
       ^ exit0 ^ {|
        .data
        .align 4
table:  .word c0, c1
|})
       "200\n")

let test_write_syscall () =
  ignore
    (check_out
       ({|
main:   set msg, %o0
        mov 6, %o1
        ta 4
|}
       ^ exit0 ^ {|
        .data
msg:    .ascii "hello\n"
|})
       "hello\n")

let test_cycles_syscall () =
  let r = run ({|
main:   ta 7
        mov %o0, %l0
        ta 7
        sub %o0, %l0, %o0
        ta 2
|} ^ exit0) in
  (* two instructions elapse between the two reads: mov and the second ta *)
  Alcotest.(check string) "cycle delta" "2\n" r.Emu.out

let test_recursion () =
  (* fib(10) = 89 (with fib(0) = fib(1) = 1) using an explicit stack *)
  ignore
    (check_out
       ({|
main:   mov 10, %o0
        call fib
        nop
        ta 2
|}
       ^ exit0
       ^ {|
fib:    cmp %o0, 2
        bl Lbase
        nop
        sub %sp, 16, %sp
        st %o7, [%sp]
        st %o0, [%sp + 4]
        call fib
        sub %o0, 1, %o0
        st %o0, [%sp + 8]
        ld [%sp + 4], %o0
        call fib
        sub %o0, 2, %o0
        ld [%sp + 8], %o1
        add %o0, %o1, %o0
        ld [%sp], %o7
        add %sp, 16, %sp
        retl
        nop
Lbase:  retl
        mov 1, %o0
|})
       "89\n")

let test_counters () =
  let r = run ({|
main:   set buf, %l0
        ld [%l0], %l1
        st %l1, [%l0 + 4]
        ld [%l0 + 4], %l2
|} ^ exit0 ^ "\n .data\n .align 4\nbuf: .word 5, 0\n") in
  Alcotest.(check int) "loads" 2 r.Emu.loads;
  Alcotest.(check int) "stores" 1 r.Emu.stores;
  Alcotest.(check int) "insns" 7 r.Emu.insns

let test_fault_illegal () =
  let exe =
    match Asm.assemble "main: .word 0\n nop\n" with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe exe with
  | exception Emu.Fault _ -> ()
  | _ -> Alcotest.fail "expected illegal-instruction fault"

let test_fault_misaligned () =
  let exe =
    match
      Asm.assemble "main: set buf, %l0\n ld [%l0 + 2], %l1\n nop\n .data\nbuf: .word 0"
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe exe with
  | exception Emu.Fault msg ->
      Alcotest.(check bool) "mentions misaligned" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected alignment fault"

let test_fault_wild_pc () =
  let exe =
    match Asm.assemble "main: jmp %g0 + 0\n nop\n nop\n" with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe exe with
  | exception Emu.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault jumping to 0"

let test_out_of_fuel () =
  let exe =
    match Asm.assemble "main: ba main\n nop\n" with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  match Emu.run_exe ~fuel:1000 exe with
  | exception Emu.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_event_hook () =
  let exe =
    match
      Asm.assemble
        ("main: set buf, %l0\n st %g0, [%l0]\n ld [%l0], %l1\n" ^ exit0
       ^ " .data\n .align 4\nbuf: .word 1")
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let loads = ref 0 and stores = ref 0 and execs = ref 0 in
  let hook = function
    | Emu.Ev_load _ -> incr loads
    | Emu.Ev_store _ -> incr stores
    | Emu.Ev_exec _ -> incr execs
  in
  let r, _ = Emu.run_exe ~hook exe in
  Alcotest.(check int) "hook loads" 1 !loads;
  Alcotest.(check int) "hook stores" 1 !stores;
  Alcotest.(check int) "hook execs" r.Emu.insns !execs

let test_y_register () =
  (* umul writes Y with the high half *)
  ignore
    (check_out
       ({|
main:   set 0x10000, %l0
        umul %l0, %l0, %l1      ! 2^32: low word 0, Y = 1
        rd %y, %o0
        ta 2
        mov %l1, %o0
        ta 2
|}
       ^ exit0)
       "1\n0\n")

(* ---- the predecoded fast path (ISSUE 5) ----

   [Emu.load] decodes the text segment once into a dense instruction
   array; stores into text re-decode the clobbered word. These tests pin
   the contract: predecoded and decode-per-step execution are observably
   identical, including under self-modifying code and on faults. *)

let run_mode ~predecode src =
  match Asm.assemble src with
  | Error m -> Alcotest.failf "assembly failed: %s" m
  | Ok exe -> fst (Emu.run_exe ~predecode exe)

let check_same_both_modes src =
  let a = run_mode ~predecode:true src
  and b = run_mode ~predecode:false src in
  Alcotest.(check string) "same output" b.Emu.out a.Emu.out;
  Alcotest.(check int) "same insns" b.Emu.insns a.Emu.insns;
  Alcotest.(check int) "same loads" b.Emu.loads a.Emu.loads;
  Alcotest.(check int) "same stores" b.Emu.stores a.Emu.stores;
  Alcotest.(check int) "same exit code" b.Emu.exit_code a.Emu.exit_code;
  a

(* or %g0, imm, %o0 — i.e. "mov imm, %o0" *)
let mov_imm_o0 imm =
  Insn.encode (Insn.Alu { op = Insn.Or; rs1 = 0; op2 = Insn.O_imm imm; rd = 8 })

let test_predecode_equiv () =
  List.iter
    (fun src -> ignore (check_same_both_modes src))
    [
      ({|
main:   mov 5, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
      ^ exit0);
      ({|
main:   set buf, %l0
        mov 7, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
|}
      ^ exit0 ^ "        .data\n        .align 4\nbuf:    .word 0\n");
    ]

let test_predecode_selfmod_word () =
  (* a full-word store over an instruction in the program's own text: the
     predecoded path must re-decode the patched word before re-executing
     it, matching decode-per-step exactly *)
  let src =
    Printf.sprintf
      {|
main:   set Lpatch, %%l0
        set 0x%x, %%l1
        st %%l1, [%%l0]
Lpatch: mov 1, %%o0
        ta 2
|}
      (mov_imm_o0 42)
    ^ exit0
  in
  let r = check_same_both_modes src in
  Alcotest.(check string) "patched instruction executed" "42\n" r.Emu.out

let test_predecode_selfmod_byte () =
  (* sub-word invalidation: a single-byte store into the low byte of an
     instruction word must also invalidate the predecoded entry *)
  Alcotest.(check int)
    "encodings differ only in the immediate byte" (mov_imm_o0 42)
    (mov_imm_o0 1 land lnot 0xFF lor 0x2a);
  let src =
    {|
main:   set Lpatch, %l0
        mov 0x2a, %l1
        stb %l1, [%l0 + 3]
Lpatch: mov 1, %o0
        ta 2
|}
    ^ exit0
  in
  let r = check_same_both_modes src in
  Alcotest.(check string) "byte-patched instruction executed" "42\n" r.Emu.out

let test_predecode_outside_text () =
  (* jumping into .data exercises the decode-per-step fallback: those pcs
     are outside the predecoded window, so fetch must fall back without
     faulting *)
  let w v = Printf.sprintf "0x%x" (Insn.encode v) in
  let ta n = Insn.Ticc { cond = Insn.CA; rs1 = 0; op2 = Insn.O_imm n } in
  let src =
    Printf.sprintf
      {|
main:   set Lcode, %%l0
        jmp %%l0
        nop
        .data
        .align 4
Lcode:  .word 0x%x, %s, 0x%x, %s, %s
|}
      (mov_imm_o0 42) (w (ta 2)) (mov_imm_o0 0) (w (ta 1)) (w Insn.nop)
  in
  let r = check_same_both_modes src in
  Alcotest.(check string) "ran code from the data segment" "42\n" r.Emu.out

let test_predecode_fault_parity () =
  (* decode of an invalid word must not fault at load time (predecode
     scans all of text); both modes fault identically at execution *)
  let fault ~predecode =
    match Asm.assemble "main:   .word 0\n        nop\n" with
    | Error m -> Alcotest.failf "asm: %s" m
    | Ok exe -> (
        match Emu.run_exe ~predecode exe with
        | exception Emu.Fault m -> m
        | _ -> Alcotest.fail "expected illegal-instruction fault")
  in
  Alcotest.(check string) "identical fault message" (fault ~predecode:false)
    (fault ~predecode:true)

(* ---- fuel boundaries and fault pokes (ISSUE 6) ----

   The differential oracle trusts that fuel exhaustion is observably
   identical in both execution modes: the terminating Ob_fuel event (and
   everything before it) must match at EVERY cutoff, including fuel that
   runs out between a branch and its delay slot. These tests sweep every
   boundary of a looping program rather than spot-checking one. *)

let events_with_fuel ~predecode ~fuel exe =
  let t = Emu.load ~predecode exe in
  let log = Emu.obs_log () in
  Emu.set_obs t (Some log);
  (match Emu.run ~fuel t with
  | exception Emu.Out_of_fuel -> ()
  | exception Emu.Fault _ -> ()
  | _ -> ());
  ( List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log),
    Emu.insns_executed t )

let fuel_parity_src =
  {|
main:   mov 3, %l0
        set buf, %l2
Lloop:  st %l0, [%l2]
        mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
        mov 0, %o0
        ta 1
        nop
        .data
        .align 4
buf:    .word 0
|}

let test_fuel_boundary_parity () =
  let exe =
    match Asm.assemble fuel_parity_src with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  (* full length first, then every fuel cutoff 1..n+1: each prefix of the
     event log, and the Ob_fuel terminator's pc, must be mode-independent —
     in particular at the cutoffs that split a bne from its delay slot *)
  let full = run_mode ~predecode:true fuel_parity_src in
  let n = full.Emu.insns in
  for fuel = 1 to n + 1 do
    let ea, ia = events_with_fuel ~predecode:true ~fuel exe
    and eb, ib = events_with_fuel ~predecode:false ~fuel exe in
    Alcotest.(check int) (Printf.sprintf "insns at fuel %d" fuel) ib ia;
    Alcotest.(check (list string))
      (Printf.sprintf "events at fuel %d" fuel)
      eb ea
  done

let test_poke_mode_parity () =
  (* overwrite the loop body's [mov %l0, %o0] (entry+0x10) with
     [mov 99, %o0] after the first iteration: later iterations must print
     99, and the predecoded instruction array must pick the new word up at
     the same instruction boundary as decode-per-step execution *)
  let exe =
    match Asm.assemble fuel_parity_src with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let run_poked ~predecode pokes =
    let t = Emu.load ~predecode exe in
    let log = Emu.obs_log () in
    Emu.set_obs t (Some log);
    Emu.set_pokes t pokes;
    (match Emu.run t with
    | exception Emu.Fault _ -> ()
    | _ -> ());
    List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log)
  in
  let pokes =
    [ { Emu.pk_at = 7; pk_addr = exe.Sef.entry + 0x10; pk_value = mov_imm_o0 99 } ]
  in
  let poked = run_poked ~predecode:true pokes in
  Alcotest.(check (list string))
    "poked run identical across modes"
    (run_poked ~predecode:false pokes)
    poked;
  if poked = run_poked ~predecode:true [] then
    Alcotest.fail "poke had no observable effect"

let test_poke_invalid_dropped () =
  (* hostile poke plans — negative, misaligned, out of range, overflowing —
     must be silently dropped: same observable run as no pokes at all *)
  let exe =
    match Asm.assemble fuel_parity_src with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let run_with pokes =
    let t = Emu.load exe in
    let log = Emu.obs_log () in
    Emu.set_obs t (Some log);
    Emu.set_pokes t pokes;
    ignore (Emu.run t);
    List.map (Format.asprintf "%a" Emu.pp_obs) (Emu.obs_events log)
  in
  let clean = run_with [] in
  let hostile =
    [
      { Emu.pk_at = 0; pk_addr = -4; pk_value = 1 };
      { Emu.pk_at = 1; pk_addr = 3; pk_value = 1 };
      { Emu.pk_at = 2; pk_addr = max_int - 3; pk_value = 1 };
      { Emu.pk_at = 3; pk_addr = 1 lsl 30; pk_value = 1 };
    ]
  in
  Alcotest.(check (list string)) "hostile pokes are no-ops" clean
    (run_with hostile)

let () =
  Alcotest.run "emu"
    [
      ( "alu",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "negative values" `Quick test_neg_values;
          Alcotest.test_case "condition codes" `Quick test_cc_branches;
          Alcotest.test_case "unsigned compares" `Quick test_unsigned_branches;
          Alcotest.test_case "y register" `Quick test_y_register;
        ] );
      ( "delay-slots",
        [
          Alcotest.test_case "delay slot executes" `Quick test_delay_slot_executes;
          Alcotest.test_case "annulled taken" `Quick test_annulled_taken;
          Alcotest.test_case "annulled untaken" `Quick test_annulled_untaken;
          Alcotest.test_case "ba,a" `Quick test_ba_annulled;
          Alcotest.test_case "call+return" `Quick test_call_and_return;
          Alcotest.test_case "call delay order" `Quick test_call_delay_after_call;
        ] );
      ( "memory",
        [
          Alcotest.test_case "widths" `Quick test_memory;
          Alcotest.test_case "ldd/std" `Quick test_ldd_std;
          Alcotest.test_case "jump table" `Quick test_jump_table_dispatch;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "write" `Quick test_write_syscall;
          Alcotest.test_case "cycles" `Quick test_cycles_syscall;
          Alcotest.test_case "recursion" `Quick test_recursion;
        ] );
      ( "faults",
        [
          Alcotest.test_case "illegal instruction" `Quick test_fault_illegal;
          Alcotest.test_case "misaligned access" `Quick test_fault_misaligned;
          Alcotest.test_case "wild jump" `Quick test_fault_wild_pc;
          Alcotest.test_case "fuel" `Quick test_out_of_fuel;
          Alcotest.test_case "event hook" `Quick test_event_hook;
        ] );
      ( "predecode",
        [
          Alcotest.test_case "mode equivalence" `Quick test_predecode_equiv;
          Alcotest.test_case "self-modifying word store" `Quick
            test_predecode_selfmod_word;
          Alcotest.test_case "self-modifying byte store" `Quick
            test_predecode_selfmod_byte;
          Alcotest.test_case "execution outside text" `Quick
            test_predecode_outside_text;
          Alcotest.test_case "fault parity" `Quick test_predecode_fault_parity;
        ] );
      ( "fuel-and-pokes",
        [
          Alcotest.test_case "fuel boundary parity" `Quick
            test_fuel_boundary_parity;
          Alcotest.test_case "poke mode parity" `Quick test_poke_mode_parity;
          Alcotest.test_case "invalid pokes dropped" `Quick
            test_poke_invalid_dropped;
        ] );
    ]
