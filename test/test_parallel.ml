(* Determinism guard for the multicore fan-out (ISSUE 5): the parallel
   drivers must be observably serial. Each driver below runs twice as a
   subprocess — once pinned to a single domain, once fanned out over
   four — and the two runs must produce byte-identical stdout: same
   coverage counts, same crash signatures, same divergence report, same
   JSON. Any ordering or merge bug in the pool shows up here as a diff. *)

(* locate the tools next to this test binary so the test is cwd-agnostic
   (dune runtest runs in _build/default/test, dune exec in the root) *)
let tool name =
  Filename.concat (Filename.dirname Sys.executable_name) ("../bin/" ^ name)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_with_jobs ~jobs exe_name args =
  let out = Filename.temp_file "eel_parallel" ".out" in
  let cmd =
    Printf.sprintf "EEL_JOBS=%d %s %s > %s 2> /dev/null" jobs
      (Filename.quote (tool exe_name))
      args (Filename.quote out)
  in
  let rc = Sys.command cmd in
  let s = read_file out in
  Sys.remove out;
  (rc, s)

let check_jobs_invariant name exe_name args =
  let rc1, s1 = run_with_jobs ~jobs:1 exe_name args in
  let rc4, s4 = run_with_jobs ~jobs:4 exe_name args in
  Alcotest.(check int) (name ^ ": exit at 1 domain") 0 rc1;
  Alcotest.(check int) (name ^ ": exit at 4 domains") 0 rc4;
  Alcotest.(check string) (name ^ ": byte-identical stdout") s1 s4

let test_fuzz_plain () =
  check_jobs_invariant "fuzz" "eel_fuzz.exe" "--count 80 --seed 42 --verbose"

let test_fuzz_diff () =
  check_jobs_invariant "fuzz --diff" "eel_fuzz.exe" "--diff --count 48 --seed 42"

let test_diff_table () = check_jobs_invariant "diff" "eel_diff.exe" ""

let test_diff_tool_json () =
  check_jobs_invariant "diff --tool --json" "eel_diff.exe" "--tool qpt2 --json"

let test_diff_metrics () =
  (* ledger/metrics counters are DLS-merged at pool joins, so --metrics
     must report identical totals at any domain count *)
  check_jobs_invariant "diff --metrics" "eel_diff.exe" "--tool qpt2 --metrics"

let test_report () =
  (* hotspot attribution + overhead ledger: table, flame totals and JSON
     all come from DLS-merged state and must not depend on the fan-out *)
  check_jobs_invariant "report" "eel_report.exe" "--tool qpt2 --top 5 --json -"

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "fuzz corpus sweep" `Quick test_fuzz_plain;
          Alcotest.test_case "fuzz differential mode" `Quick test_fuzz_diff;
          Alcotest.test_case "identity-diff table" `Quick test_diff_table;
          Alcotest.test_case "tool-diff JSON report" `Quick test_diff_tool_json;
          Alcotest.test_case "tool-diff ledger metrics" `Quick test_diff_metrics;
          Alcotest.test_case "hotspot + overhead report" `Quick test_report;
        ] );
    ]
