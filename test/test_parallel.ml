(* Determinism guard for the multicore fan-out (ISSUE 5): the parallel
   drivers must be observably serial. Each driver below runs twice as a
   subprocess — once pinned to a single domain, once fanned out over
   four — and the two runs must produce byte-identical stdout: same
   coverage counts, same crash signatures, same divergence report, same
   JSON. Any ordering or merge bug in the pool shows up here as a diff. *)

(* locate the tools next to this test binary so the test is cwd-agnostic
   (dune runtest runs in _build/default/test, dune exec in the root) *)
let tool name =
  Filename.concat (Filename.dirname Sys.executable_name) ("../bin/" ^ name)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_with_jobs ~jobs exe_name args =
  let out = Filename.temp_file "eel_parallel" ".out" in
  let cmd =
    Printf.sprintf "EEL_JOBS=%d %s %s > %s 2> /dev/null" jobs
      (Filename.quote (tool exe_name))
      args (Filename.quote out)
  in
  let rc = Sys.command cmd in
  let s = read_file out in
  Sys.remove out;
  (rc, s)

let check_jobs_invariant name exe_name args =
  let rc1, s1 = run_with_jobs ~jobs:1 exe_name args in
  let rc4, s4 = run_with_jobs ~jobs:4 exe_name args in
  Alcotest.(check int) (name ^ ": exit at 1 domain") 0 rc1;
  Alcotest.(check int) (name ^ ": exit at 4 domains") 0 rc4;
  Alcotest.(check string) (name ^ ": byte-identical stdout") s1 s4

let test_fuzz_plain () =
  check_jobs_invariant "fuzz" "eel_fuzz.exe" "--count 80 --seed 42 --verbose"

let test_fuzz_diff () =
  check_jobs_invariant "fuzz --diff" "eel_fuzz.exe" "--diff --count 48 --seed 42"

let test_diff_table () = check_jobs_invariant "diff" "eel_diff.exe" ""

let test_diff_tool_json () =
  check_jobs_invariant "diff --tool --json" "eel_diff.exe" "--tool qpt2 --json"

let test_diff_metrics () =
  (* ledger/metrics counters are DLS-merged at pool joins, so --metrics
     must report identical totals at any domain count *)
  check_jobs_invariant "diff --metrics" "eel_diff.exe" "--tool qpt2 --metrics"

let test_report () =
  (* hotspot attribution + overhead ledger: table, flame totals and JSON
     all come from DLS-merged state and must not depend on the fan-out *)
  check_jobs_invariant "report" "eel_report.exe" "--tool qpt2 --top 5 --json -"

(* OS-mode workload generation (ISSUE 9): the same seed must yield a
   byte-identical SEF image whatever the fan-out — the generator is a pure
   function of the seed, and the OS world in its banner must match too *)
let test_workload_os_sef () =
  let gen jobs =
    let sef = Filename.temp_file "eel_parallel" ".sef" in
    let cmd =
      Printf.sprintf "EEL_JOBS=%d %s --style os --seed 7 -o %s > /dev/null 2>&1"
        jobs
        (Filename.quote (tool "workload_gen.exe"))
        (Filename.quote sef)
    in
    let rc = Sys.command cmd in
    let s = read_file sef in
    Sys.remove sef;
    (rc, s)
  in
  let rc1, s1 = gen 1 and rc4, s4 = gen 4 in
  Alcotest.(check int) "workload_gen --style os: exit at 1 domain" 0 rc1;
  Alcotest.(check int) "workload_gen --style os: exit at 4 domains" 0 rc4;
  Alcotest.(check string) "byte-identical OS-mode SEF" s1 s4

(* OS jobs through the serve daemon: cold (empty cache) and warm (second
   pass over the same cache) responses are byte-identical at any
   EEL_JOBS — the world spec's digest is part of the cache key, so a hit
   returns exactly what a fresh run computes *)
let test_serve_os_jobs () =
  let jobs_file = Filename.temp_file "eel_parallel" ".jsonl" in
  let oc = open_out jobs_file in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    [
      {|{"id": "a", "tool": "qpt2", "corpus": "os-copy"}|};
      {|{"id": "b", "tool": "sfi", "corpus": "os-copy"}|};
      {|{"id": "c", "tool": "tracer", "corpus": "os-cat"}|};
      {|{"id": "d", "tool": "amemory", "gen": {"seed": 7, "style": "os"}}|};
      {|{"id": "e", "tool": "optprof", "corpus": "os-err"}|};
    ];
  close_out oc;
  let cache_dir = Filename.temp_file "eel_parallel" ".cache" in
  Sys.remove cache_dir;
  let serve ~jobs =
    let out = Filename.temp_file "eel_parallel" ".out" in
    let cmd =
      Printf.sprintf
        "EEL_JOBS=%d %s --cache-dir %s < %s > %s 2> /dev/null" jobs
        (Filename.quote (tool "eel_serve.exe"))
        (Filename.quote cache_dir) (Filename.quote jobs_file)
        (Filename.quote out)
    in
    let rc = Sys.command cmd in
    let s = read_file out in
    Sys.remove out;
    (rc, s)
  in
  let rc_cold, cold = serve ~jobs:1 in
  let rc_warm, warm = serve ~jobs:4 in
  let rc_warm1, warm1 = serve ~jobs:1 in
  Alcotest.(check int) "cold serve exits 0" 0 rc_cold;
  Alcotest.(check int) "warm serve exits 0" 0 rc_warm;
  Alcotest.(check int) "second warm serve exits 0" 0 rc_warm1;
  (* the "cached" field is provenance, everything else is the result:
     warm responses must be byte-identical to cold modulo that flag *)
  let normalize s =
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then ()
      else
        let tru = {|"cached": true|} and fls = {|"cached": false|} in
        if i + String.length tru <= n && String.sub s i (String.length tru) = tru
        then begin
          Buffer.add_string buf {|"cached": _|};
          go (i + String.length tru)
        end
        else if
          i + String.length fls <= n && String.sub s i (String.length fls) = fls
        then begin
          Buffer.add_string buf {|"cached": _|};
          go (i + String.length fls)
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  in
  Alcotest.(check string) "warm = cold at 4 domains (modulo cached flag)"
    (normalize cold) (normalize warm);
  Alcotest.(check string) "warm = cold at 1 domain (modulo cached flag)"
    (normalize cold) (normalize warm1);
  (* and the warm pass really was served from the result cache *)
  Alcotest.(check bool) "warm pass hit the cache" true
    (String.length warm >= String.length {|"cached": true|}
    &&
    let needle = {|"cached": true|} in
    let rec find i =
      i + String.length needle <= String.length warm
      && (String.sub warm i (String.length needle) = needle || find (i + 1))
    in
    find 0);
  Alcotest.(check bool) "every OS job verified equivalent" true
    (List.for_all
       (fun line ->
         line = ""
         ||
         let has needle =
           let rec find i =
             i + String.length needle <= String.length line
             && (String.sub line i (String.length needle) = needle
                || find (i + 1))
           in
           find 0
         in
         has {|"verdict": "equivalent"|})
       (String.split_on_char '\n' cold));
  Sys.remove jobs_file;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists cache_dir then rm cache_dir

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "fuzz corpus sweep" `Quick test_fuzz_plain;
          Alcotest.test_case "fuzz differential mode" `Quick test_fuzz_diff;
          Alcotest.test_case "identity-diff table" `Quick test_diff_table;
          Alcotest.test_case "tool-diff JSON report" `Quick test_diff_tool_json;
          Alcotest.test_case "tool-diff ledger metrics" `Quick test_diff_metrics;
          Alcotest.test_case "hotspot + overhead report" `Quick test_report;
          Alcotest.test_case "OS-mode workload SEF" `Quick test_workload_os_sef;
          Alcotest.test_case "OS jobs through eel_serve" `Quick
            test_serve_os_jobs;
        ] );
    ]
