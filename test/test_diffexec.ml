(* Tests for the differential execution oracle: the observable-event sink,
   the lockstep comparator's divergence classification, the identity-edit
   round-trip oracle over the whole example corpus, and the
   coverage-guided mutation scheduler. *)

module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module Diag = Eel_robust.Diag
module Mutate = Eel_mutate.Mutate
module Sched = Eel_mutate.Sched
module Dx = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
open Eel_sparc

let mach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let execute_ok ?fuel ?limit exe =
  match Dx.execute ?fuel ?limit exe with
  | Ok r -> r
  | Error e -> Alcotest.failf "execute: %s" (Diag.error_message e)

let exit0 = "        mov 0, %o0\n        ta 1\n        nop\n"

(* ------------------------------------------------------------------ *)
(* The observable-event sink                                           *)
(* ------------------------------------------------------------------ *)

let test_obs_events () =
  let exe =
    assemble
      ({|
main:   set buf, %l0
        mov 7, %l1
        st %l1, [%l0]
        mov 42, %o0
        ta 2
|}
      ^ exit0 ^ "        .bss\n        .align 4\nbuf:    .space 8\n")
  in
  let r = execute_ok exe in
  (match r.Dx.r_stop with
  | Dx.S_exit 0 -> ()
  | s -> Alcotest.failf "stop: %s" (Format.asprintf "%a" Dx.pp_stop s));
  (* in order: the store, the putint trap, the exit trap, the exit *)
  match Array.to_list r.Dx.r_events with
  | [
   Emu.Ob_store { width = 4; value = 7; _ };
   Emu.Ob_trap { num = 2; arg = 42; _ };
   Emu.Ob_trap { num = 1; arg = 0; _ };
   Emu.Ob_exit { code = 0; _ };
  ] ->
      Alcotest.(check bool) "not truncated" false r.Dx.r_truncated;
      Alcotest.(check int) "total" 4 r.Dx.r_total
  | evs ->
      Alcotest.failf "unexpected events: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Emu.pp_obs) evs))

let test_obs_bounded () =
  let exe =
    assemble
      ({|
main:   mov 20, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
      ^ exit0)
  in
  let r = execute_ok ~limit:5 exe in
  Alcotest.(check int) "retained" 5 (Array.length r.Dx.r_events);
  Alcotest.(check bool) "truncated" true r.Dx.r_truncated;
  Alcotest.(check bool) "total exceeds bound" true (r.Dx.r_total > 5)

let test_no_sink_no_events () =
  (* without set_obs, the emulator records nothing (the hot loop has no
     sink to feed) *)
  let exe = assemble ("main:   mov 3, %o0\n        ta 2\n" ^ exit0) in
  let t = Emu.load exe in
  ignore (Emu.run t);
  Alcotest.(check bool) "no log installed" true (Emu.obs_of t = None)

(* ------------------------------------------------------------------ *)
(* Identity round-trip oracle                                          *)
(* ------------------------------------------------------------------ *)

let test_identity_corpus () =
  List.iter
    (fun (name, exe) ->
      match Dx.identity_roundtrip ~mach exe with
      | Error e -> Alcotest.failf "%s: %s" name (Diag.error_message e)
      | Ok rp ->
          Alcotest.(check string)
            (name ^ " verdict") "equivalent"
            (Dx.verdict_name rp.Dx.rp_verdict))
    (Corpus.all ())

let test_identity_fib_o7_spill () =
  (* fib spills %o7 (a code pointer): the edited run stores edited return
     addresses, and the oracle's inverse address map must normalize them —
     a false value-mismatch on the [st %o7] otherwise *)
  let exe = assemble (List.assoc "fib" Corpus.sources) in
  match Dx.identity_roundtrip ~mach exe with
  | Error e -> Alcotest.failf "fib: %s" (Diag.error_message e)
  | Ok rp ->
      Alcotest.(check string)
        "verdict" "equivalent"
        (Dx.verdict_name rp.Dx.rp_verdict)

let test_identity_no_text () =
  (* front-end refusal surfaces as a structured error, never an exception *)
  let data =
    {
      Sef.sec_name = ".data";
      sec_kind = Sef.Data;
      vaddr = 0x20000;
      size = 8;
      contents = Bytes.make 8 '\000';
    }
  in
  let exe = Sef.create ~entry:0x10000 ~sections:[ data ] ~symbols:[] in
  match Dx.identity_roundtrip ~mach exe with
  | Error _ -> ()
  | Ok rp ->
      Alcotest.failf "expected a structured error, got %s"
        (Dx.verdict_name rp.Dx.rp_verdict)

let test_predecode_self_differential () =
  (* the predecoded fast path (ISSUE 5) under the oracle's own event sink:
     every corpus program must produce a byte-identical observable log,
     the same stop condition, and the same event total with predecode on
     and off — the emulator differentially tested against itself *)
  List.iter
    (fun (name, exe) ->
      let exec ~predecode =
        match Dx.execute ~predecode exe with
        | Ok r -> r
        | Error e -> Alcotest.failf "%s: %s" name (Diag.error_message e)
      in
      let a = exec ~predecode:true and b = exec ~predecode:false in
      Alcotest.(check string)
        (name ^ ": same stop")
        (Format.asprintf "%a" Dx.pp_stop b.Dx.r_stop)
        (Format.asprintf "%a" Dx.pp_stop a.Dx.r_stop);
      Alcotest.(check int) (name ^ ": same total") b.Dx.r_total a.Dx.r_total;
      Alcotest.(check bool)
        (name ^ ": identical event log")
        true
        (a.Dx.r_events = b.Dx.r_events))
    (Corpus.all ())

(* the tier-2 block engine (ISSUE 10) under the oracle's own event sink:
   every program of BOTH corpora — CPU-bound and OS-bound — must produce
   a byte-identical observable run under block compilation and under
   pure interpretation: same stop condition, same event log (order and
   payloads), same instruction count, output and final register file.
   This is the acceptance gate for OSR exactness: obs sinks are armed,
   so every compiled store emits its event from inside the closure. *)
let check_tier_self_differential name ?os exe =
  let exec tier =
    match Dx.execute ?os ~tier exe with
    | Ok r -> r
    | Error e -> Alcotest.failf "%s: %s" name (Diag.error_message e)
  in
  let a = exec Eel_emu.Tier2.Block and b = exec Eel_emu.Tier2.Interp in
  Alcotest.(check string)
    (name ^ ": same stop")
    (Format.asprintf "%a" Dx.pp_stop b.Dx.r_stop)
    (Format.asprintf "%a" Dx.pp_stop a.Dx.r_stop);
  Alcotest.(check int) (name ^ ": same total") b.Dx.r_total a.Dx.r_total;
  Alcotest.(check bool)
    (name ^ ": identical event log")
    true
    (a.Dx.r_events = b.Dx.r_events);
  Alcotest.(check int) (name ^ ": same insns") b.Dx.r_insns a.Dx.r_insns;
  Alcotest.(check string) (name ^ ": same output") b.Dx.r_out a.Dx.r_out;
  Alcotest.(check (array int)) (name ^ ": same registers") b.Dx.r_regs
    a.Dx.r_regs

let test_tier2_self_differential () =
  List.iter
    (fun (name, exe) -> check_tier_self_differential name exe)
    (Corpus.all ())

let test_tier2_self_differential_os () =
  List.iter
    (fun (name, exe, spec) -> check_tier_self_differential name ~os:spec exe)
    (Corpus.all_os ())

(* ------------------------------------------------------------------ *)
(* Seeded semantics-changing mutants                                   *)
(* ------------------------------------------------------------------ *)

let branch_src =
  {|
main:   mov 1, %l0
        cmp %l0, 1
        be Lyes
        nop
        mov 111, %o0
        ba Lout
        nop
Lyes:   mov 222, %o0
Lout:   ta 2
|}
  ^ exit0

let patch32_exn exe addr f =
  match Sef.fetch32 exe addr with
  | None -> Alcotest.failf "no word at 0x%x" addr
  | Some w ->
      if not (Sef.patch32 exe addr (f w)) then
        Alcotest.failf "patch at 0x%x failed" addr

let test_mutant_flipped_branch () =
  let a = assemble branch_src and b = assemble branch_src in
  (* Bicc cond field is bits 28:25; be=0001, bne=1001 — flip bit 28 of the
     [be] at main+8 and the branch inverts *)
  patch32_exn b 0x10008 (fun w -> w lxor 0x10000000);
  match Dx.compare_images a b with
  | Error e -> Alcotest.failf "compare: %s" (Diag.error_message e)
  | Ok rp -> (
      (match rp.Dx.rp_verdict with
      | Dx.Diverged Dx.D_value -> ()
      | v -> Alcotest.failf "verdict: %s" (Dx.verdict_name v));
      match rp.Dx.rp_divergence with
      | None -> Alcotest.fail "missing divergence detail"
      | Some dv ->
          (* first divergence is the ta 2 at main+32: original prints 222,
             the flipped-branch mutant prints 111 *)
          Alcotest.(check int) "first-divergence index" 0 dv.Dx.dv_index;
          Alcotest.(check int) "first-divergence pc" 0x10020 dv.Dx.dv_pc)

let store_src =
  {|
main:   mov 7, %l1
        set buf, %l0
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
|}
  ^ exit0 ^ "        .data\n        .align 4\nbuf:    .word 0\n"

let test_mutant_clobbered_store () =
  let a = assemble store_src and b = assemble store_src in
  (* mov 7,%l1 is or %g0,7,%l1 at main+0: xor the imm13 with 0xF turns the
     stored value into 8 *)
  patch32_exn b 0x10000 (fun w -> w lxor 0xF);
  (* the divergence must be anchored at the store instruction *)
  let store_pc =
    let r = execute_ok a in
    match
      Array.to_list r.Dx.r_events
      |> List.find_map (function
           | Emu.Ob_store { pc; _ } -> Some pc
           | _ -> None)
    with
    | Some pc -> pc
    | None -> Alcotest.fail "no store event in the original run"
  in
  match Dx.compare_images a b with
  | Error e -> Alcotest.failf "compare: %s" (Diag.error_message e)
  | Ok rp -> (
      (match rp.Dx.rp_verdict with
      | Dx.Diverged Dx.D_value -> ()
      | v -> Alcotest.failf "verdict: %s" (Dx.verdict_name v));
      match rp.Dx.rp_divergence with
      | None -> Alcotest.fail "missing divergence detail"
      | Some dv ->
          Alcotest.(check int) "diverges at the store" store_pc dv.Dx.dv_pc;
          Alcotest.(check int) "at event 0" 0 dv.Dx.dv_index)

let test_mutant_exit_code () =
  let src = "main:   mov 3, %o0\n        ta 2\n" ^ exit0 in
  let a = assemble src and b = assemble src in
  (* flip the exit status: mov 0,%o0 (main+8) becomes mov 1,%o0 *)
  patch32_exn b 0x10008 (fun w -> w lxor 0x1);
  match Dx.compare_images a b with
  | Error e -> Alcotest.failf "compare: %s" (Diag.error_message e)
  | Ok rp -> (
      match rp.Dx.rp_verdict with
      | Dx.Diverged Dx.D_value -> ()
      | v -> Alcotest.failf "verdict: %s" (Dx.verdict_name v))

(* ------------------------------------------------------------------ *)
(* Truncation and fault symmetry                                       *)
(* ------------------------------------------------------------------ *)

let test_fuel_truncated_equal () =
  (* an infinite loop exhausts the budget on both sides: the oracle must
     classify fuel-truncated-equal, never divergence *)
  let exe = assemble "main:   ba main\n        nop\n" in
  match Dx.identity_roundtrip ~fuel:1000 ~mach exe with
  | Error e -> Alcotest.failf "oracle: %s" (Diag.error_message e)
  | Ok rp ->
      Alcotest.(check string)
        "verdict" "fuel-truncated-equal"
        (Dx.verdict_name rp.Dx.rp_verdict)

let test_log_truncation_is_not_divergence () =
  (* a log bound hit on one side is truncation too: the dropped suffix
     might have matched *)
  let exe = assemble (List.assoc "countdown" Corpus.sources) in
  let a = execute_ok exe in
  let b = execute_ok ~limit:2 exe in
  let rp = Dx.compare_runs a b in
  Alcotest.(check string)
    "verdict" "fuel-truncated-equal"
    (Dx.verdict_name rp.Dx.rp_verdict)

let test_both_fault () =
  (* both sides fault after identical observable prefixes: a verdict of
     its own, not a divergence *)
  let exe = assemble "main:   .word 0\n        nop\n" in
  match Dx.compare_images exe exe with
  | Error e -> Alcotest.failf "compare: %s" (Diag.error_message e)
  | Ok rp ->
      Alcotest.(check string)
        "verdict" "both-fault"
        (Dx.verdict_name rp.Dx.rp_verdict)

let test_fault_asymmetry () =
  let good = "main:   mov 1, %o0\n        ta 2\n" ^ exit0 in
  let a = assemble good in
  let b = assemble good in
  (* turn the mov into an illegal word: the mutant faults where the
     original prints *)
  patch32_exn b 0x10000 (fun _ -> 0);
  match Dx.compare_images a b with
  | Error e -> Alcotest.failf "compare: %s" (Diag.error_message e)
  | Ok rp -> (
      match rp.Dx.rp_verdict with
      | Dx.Diverged Dx.D_fault_asym -> ()
      | v -> Alcotest.failf "verdict: %s" (Dx.verdict_name v))

(* ------------------------------------------------------------------ *)
(* Coverage-guided scheduler                                           *)
(* ------------------------------------------------------------------ *)

let test_sched_first_cycle_covers_all () =
  let t = Sched.create ~prefix:"test.sched.a" () in
  let picked =
    List.init (Sched.num_classes t) (fun _ ->
        let k = Sched.next t in
        ignore (Sched.observe t k ~signature:"same");
        k)
  in
  Alcotest.(check int)
    "all classes visited once" (Sched.num_classes t)
    (List.length (List.sort_uniq compare picked))

let test_sched_biases_to_rich_class () =
  let t = Sched.create ~prefix:"test.sched.b" () in
  let fresh = ref 0 in
  for _ = 1 to 160 do
    let k = Sched.next t in
    let signature =
      if k = Mutate.Bit_flip_text then (
        incr fresh;
        Printf.sprintf "new-%d" !fresh)
      else "saturated"
    in
    ignore (Sched.observe t k ~signature)
  done;
  let rich = Sched.attempts_of t Mutate.Bit_flip_text in
  List.iter
    (fun k ->
      if k <> Mutate.Bit_flip_text then
        Alcotest.(check bool)
          (Printf.sprintf "bit-flip-text out-attempts %s" (Mutate.name k))
          true
          (rich > Sched.attempts_of t k))
    Mutate.all;
  (* and the signature bookkeeping matches what we fed it *)
  Alcotest.(check int) "distinct global" (!fresh + 1) (Sched.distinct t);
  Alcotest.(check int)
    "distinct per class" !fresh
    (Sched.distinct_of t Mutate.Bit_flip_text)

let test_sched_deterministic () =
  let run () =
    let t = Sched.create ~prefix:"test.sched.c" () in
    List.init 64 (fun i ->
        let k = Sched.next t in
        ignore (Sched.observe t k ~signature:(Mutate.name k ^ string_of_int (i mod 3)));
        Mutate.name k)
  in
  Alcotest.(check (list string)) "same schedule" (run ()) (run ())

let test_sched_metrics_published () =
  let t = Sched.create ~prefix:"test.sched.d" () in
  let k = Sched.next t in
  ignore (Sched.observe t k ~signature:"sig");
  match Eel_obs.Metrics.find "test.sched.d.distinct" with
  | Some (Eel_obs.Metrics.Float f) ->
      Alcotest.(check int) "distinct gauge" 1 (int_of_float f)
  | _ -> Alcotest.fail "distinct gauge not published"

let test_sched_blind_cycles () =
  let names = List.map Mutate.name (Sched.blind ~count:20) in
  let expect =
    List.init 20 (fun i -> Mutate.name (List.nth Mutate.all (i mod 16)))
  in
  Alcotest.(check (list string)) "cycle" expect names

let () =
  Alcotest.run "diffexec"
    [
      ( "obs-sink",
        [
          Alcotest.test_case "event order and payloads" `Quick test_obs_events;
          Alcotest.test_case "bounded log" `Quick test_obs_bounded;
          Alcotest.test_case "no sink, no events" `Quick test_no_sink_no_events;
        ] );
      ( "identity-oracle",
        [
          Alcotest.test_case "corpus is event-equivalent" `Quick
            test_identity_corpus;
          Alcotest.test_case "return-address spills normalize" `Quick
            test_identity_fib_o7_spill;
          Alcotest.test_case "refusal is a structured error" `Quick
            test_identity_no_text;
          Alcotest.test_case "predecode self-differential" `Quick
            test_predecode_self_differential;
          Alcotest.test_case "tier-2 self-differential (CPU corpus)" `Quick
            test_tier2_self_differential;
          Alcotest.test_case "tier-2 self-differential (OS corpus)" `Quick
            test_tier2_self_differential_os;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "flipped branch condition" `Quick
            test_mutant_flipped_branch;
          Alcotest.test_case "clobbered store" `Quick test_mutant_clobbered_store;
          Alcotest.test_case "changed exit code" `Quick test_mutant_exit_code;
        ] );
      ( "truncation-and-faults",
        [
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_truncated_equal;
          Alcotest.test_case "log bound" `Quick
            test_log_truncation_is_not_divergence;
          Alcotest.test_case "both fault" `Quick test_both_fault;
          Alcotest.test_case "fault asymmetry" `Quick test_fault_asymmetry;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "first cycle covers all classes" `Quick
            test_sched_first_cycle_covers_all;
          Alcotest.test_case "biases toward rich classes" `Quick
            test_sched_biases_to_rich_class;
          Alcotest.test_case "deterministic" `Quick test_sched_deterministic;
          Alcotest.test_case "publishes coverage gauges" `Quick
            test_sched_metrics_published;
          Alcotest.test_case "blind schedule cycles" `Quick
            test_sched_blind_cycles;
        ] );
    ]
