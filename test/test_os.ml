(* Tests for the OS layer (ISSUE 9): the syscall ABI and its error
   conventions, the in-memory file system and fd table, the dispatcher's
   observable surface, policy interposition, the OS-mode workload
   generator, and the full corpus x toolbox equivalence sweep — plus the
   adversarial directions the acceptance criteria name: an undeclared
   denial must be a contract violation, and a dropped or reordered write
   must diverge. *)

module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module Diag = Eel_robust.Diag
module Dx = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Contract = Eel_equiv.Contract
module Toolbox = Eel_tools.Toolbox
module Fault = Eel_mutate.Fault
module Gen = Eel_workload.Gen
module Abi = Eel_os.Abi
module Fs = Eel_os.Fs
module Fdtab = Eel_os.Fdtab
module Policy = Eel_os.Policy
module Spec = Eel_os.Spec
module Os = Eel_os.Os
open Eel_sparc

let mach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let execute_ok ?fuel ?os exe =
  match Dx.execute ?fuel ?os exe with
  | Ok r -> r
  | Error e -> Alcotest.failf "execute: %s" (Diag.error_message e)

let exit_code r =
  match r.Dx.r_stop with
  | Dx.S_exit c -> c
  | s -> Alcotest.failf "expected exit, got %s" (Format.asprintf "%a" Dx.pp_stop s)

(* ------------------------------------------------------------------ *)
(* ABI                                                                 *)
(* ------------------------------------------------------------------ *)

let test_abi_window () =
  Alcotest.(check (option int))
    "below the window" None
    (Abi.num_of_trap_imm (Abi.trap_base - 1));
  Alcotest.(check (option int))
    "at the limit" None
    (Abi.num_of_trap_imm Abi.trap_limit);
  Alcotest.(check (option int))
    "exit" (Some Abi.sys_exit)
    (Abi.num_of_trap_imm (Abi.trap_imm Abi.sys_exit));
  (* the builtin debug traps (ta 1..7) stay outside the window *)
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "builtin ta %d not captured" n)
        None (Abi.num_of_trap_imm n))
    [ 1; 2; 3; 4; 5; 7 ]

let test_abi_names () =
  let name imm = Abi.name_of_trap_imm imm in
  Alcotest.(check (option string)) "exit" (Some "exit") (name 17);
  Alcotest.(check (option string)) "read" (Some "read") (name 19);
  Alcotest.(check (option string)) "write" (Some "write") (name 20);
  Alcotest.(check (option string)) "open" (Some "open") (name 21);
  Alcotest.(check (option string)) "close" (Some "close") (name 22);
  Alcotest.(check (option string)) "brk" (Some "brk") (name 33);
  Alcotest.(check (option string)) "unassigned in-window" None (name 18);
  Alcotest.(check (option string)) "outside window" None (name 4)

(* the workload generator keeps literal trap immediates (to stay free of
   an eel_os dependency); this pin is the promise made in gen.ml that
   they mirror the ABI table *)
let test_gen_mirrors_abi () =
  Alcotest.(check int) "ta_exit" (Abi.trap_imm Abi.sys_exit) Gen.ta_exit;
  Alcotest.(check int) "ta_read" (Abi.trap_imm Abi.sys_read) Gen.ta_read;
  Alcotest.(check int) "ta_write" (Abi.trap_imm Abi.sys_write) Gen.ta_write;
  Alcotest.(check int) "ta_open" (Abi.trap_imm Abi.sys_open) Gen.ta_open;
  Alcotest.(check int) "ta_close" (Abi.trap_imm Abi.sys_close) Gen.ta_close

(* ------------------------------------------------------------------ *)
(* file system + fd table                                              *)
(* ------------------------------------------------------------------ *)

let test_fs_semantics () =
  let fs = Fs.create [ ("a.txt", "hello") ] in
  (match Fs.lookup fs "a.txt" with
  | None -> Alcotest.fail "a.txt missing"
  | Some f ->
      Alcotest.(check string) "read all" "hello" (Fs.read f ~pos:0 ~len:99);
      Alcotest.(check string) "read middle" "ell" (Fs.read f ~pos:1 ~len:3);
      Alcotest.(check string) "read at EOF" "" (Fs.read f ~pos:5 ~len:4);
      Fs.write f ~pos:5 " world";
      Alcotest.(check string) "grown" "hello world" (Fs.contents f);
      (* sparse write zero-fills the gap *)
      Fs.write f ~pos:13 "x";
      Alcotest.(check string) "gap zero-filled" "hello world\000\000x"
        (Fs.contents f));
  Alcotest.(check bool) "absent name" true (Fs.lookup fs "b.txt" = None);
  (* open-for-write truncates *)
  let f2 = Fs.create_file fs "a.txt" in
  Alcotest.(check string) "truncated" "" (Fs.contents f2);
  (* per-run snapshot: a second create from the same spec list is fresh *)
  let fs2 = Fs.create [ ("a.txt", "hello") ] in
  match Fs.lookup fs2 "a.txt" with
  | Some f -> Alcotest.(check string) "snapshot reset" "hello" (Fs.contents f)
  | None -> Alcotest.fail "a.txt missing after reset"

let test_fdtab () =
  let t = Fdtab.create ~stdin:"abc" in
  Alcotest.(check bool) "fd 0 pre-opened" true (Fdtab.get t 0 <> None);
  Alcotest.(check bool) "fd 1 pre-opened" true (Fdtab.get t 1 <> None);
  Alcotest.(check bool) "fd 2 pre-opened" true (Fdtab.get t 2 <> None);
  Alcotest.(check bool) "fd 3 free" true (Fdtab.get t 3 = None);
  Alcotest.(check (option int)) "alloc lowest" (Some 3)
    (Fdtab.alloc t Fdtab.Fd_out);
  Alcotest.(check (option int)) "alloc next" (Some 4)
    (Fdtab.alloc t Fdtab.Fd_out);
  Alcotest.(check bool) "close" true (Fdtab.close t 3);
  Alcotest.(check bool) "double close" false (Fdtab.close t 3);
  Alcotest.(check (option int)) "alloc reuses lowest" (Some 3)
    (Fdtab.alloc t Fdtab.Fd_out);
  (* fill to max_fd, then EMFILE territory *)
  let rec fill () =
    match Fdtab.alloc t Fdtab.Fd_out with Some _ -> fill () | None -> ()
  in
  fill ();
  Alcotest.(check (option int)) "table full" None (Fdtab.alloc t Fdtab.Fd_out)

let test_policy () =
  Alcotest.(check bool) "allow-all never denies" false
    (Policy.denies Policy.Allow_all Abi.sys_write 7);
  let p = Policy.Deny_write_fd_above 2 in
  Alcotest.(check bool) "write fd 3 denied" true (Policy.denies p Abi.sys_write 3);
  Alcotest.(check bool) "write fd 1 allowed" false
    (Policy.denies p Abi.sys_write 1);
  Alcotest.(check bool) "read fd 3 allowed" false
    (Policy.denies p Abi.sys_read 3)

(* ------------------------------------------------------------------ *)
(* dispatcher behaviour through assembled programs                     *)
(* ------------------------------------------------------------------ *)

(* exit(n) via the OS window *)
let test_dispatch_exit () =
  let exe = assemble "        mov 42, %o0\n        ta 17\n        nop\n" in
  let r = execute_ok ~os:Spec.empty exe in
  Alcotest.(check int) "exit code" 42 (exit_code r);
  (* the syscall surfaced as an observable event *)
  let sys =
    Array.to_list r.Dx.r_events
    |> List.filter_map (function
         | Emu.Ob_syscall { num; ret; err; _ } -> Some (num, ret, err)
         | _ -> None)
  in
  Alcotest.(check (list (triple int int bool)))
    "one exit syscall" [ (Abi.sys_exit, 42, false) ] sys

(* brk: grow the data segment, reread the break; shrink requests and
   absurd values are ignored (the break never moves backwards) *)
let test_dispatch_brk () =
  let src =
    "        ta 5\n" (* builtin brk trap: current break -> %o0 *)
    ^ "        add %o0, 64, %l0\n"
    ^ "        mov %l0, %o0\n"
    ^ "        ta 33\n" (* sys_brk(cur+64) *)
    ^ "        cmp %o0, %l0\n"
    ^ "        bne Lbad\n"
    ^ "        nop\n"
    ^ "        mov 1, %o0\n"
    ^ "        ta 33\n" (* sys_brk(1): shrink ignored, returns cur *)
    ^ "        cmp %o0, %l0\n"
    ^ "        bne Lbad\n"
    ^ "        nop\n"
    ^ "        mov 0, %o0\n        ta 17\n        nop\n"
    ^ "Lbad:   mov 1, %o0\n        ta 17\n        nop\n"
  in
  let r = execute_ok ~os:Spec.empty (assemble src) in
  Alcotest.(check int) "brk grows monotonically" 0 (exit_code r)

(* in-window number with no call assigned: EINVAL with carry set *)
let test_dispatch_einval () =
  let src =
    "        ta 35\n" (* syscall 19: unassigned *)
    ^ "        bcc Lbad\n"
    ^ "        nop\n"
    ^ Printf.sprintf "        cmp %%o0, %d\n" Abi.einval
    ^ "        bne Lbad\n"
    ^ "        nop\n"
    ^ "        mov 0, %o0\n        ta 17\n        nop\n"
    ^ "Lbad:   mov 1, %o0\n        ta 17\n        nop\n"
  in
  let r = execute_ok ~os:Spec.empty (assemble src) in
  Alcotest.(check int) "EINVAL with carry" 0 (exit_code r)

(* without the OS layer installed, the same window immediates are
   unknown traps: the run faults instead of dispatching *)
let test_no_os_no_dispatch () =
  let exe = assemble "        mov 0, %o0\n        ta 17\n        nop\n" in
  let r = execute_ok exe in
  match r.Dx.r_stop with
  | Dx.S_fault _ -> ()
  | s ->
      Alcotest.failf "expected fault, got %s"
        (Format.asprintf "%a" Dx.pp_stop s)

(* read from a spec file, write to fd 1: end-to-end data path *)
let test_dispatch_file_io () =
  let spec = Spec.make ~files:[ ("in.txt", "DATA!") ] () in
  let src =
    "        set path, %o0\n"
    ^ "        mov 0, %o1\n"
    ^ "        ta 21\n" (* open(path, O_RDONLY) *)
    ^ "        bcs Lbad\n"
    ^ "        nop\n"
    ^ "        mov %o0, %l6\n"
    ^ "        mov %l6, %o0\n        set buf, %o1\n        mov 64, %o2\n"
    ^ "        ta 19\n" (* read *)
    ^ "        bcs Lbad\n"
    ^ "        nop\n"
    ^ "        mov %o0, %l5\n"
    ^ "        mov 1, %o0\n        set buf, %o1\n        mov %l5, %o2\n"
    ^ "        ta 20\n" (* write(1, buf, n) *)
    ^ "        bcs Lbad\n"
    ^ "        nop\n"
    ^ "        mov %l6, %o0\n        ta 22\n" (* close *)
    ^ "        bcs Lbad\n"
    ^ "        nop\n"
    ^ "        mov 0, %o0\n        ta 17\n        nop\n"
    ^ "Lbad:   mov 1, %o0\n        ta 17\n        nop\n"
    ^ "        .data\npath:   .asciz \"in.txt\"\n"
    ^ "        .bss\nbuf:    .space 64\n"
  in
  let r = execute_ok ~os:spec (assemble src) in
  Alcotest.(check int) "clean run" 0 (exit_code r);
  Alcotest.(check string) "file contents reached stdout" "DATA!" r.Dx.r_out

(* ENOENT on a missing file; EBADF on a bad descriptor *)
let test_dispatch_errnos () =
  let src =
    "        set path, %o0\n        mov 0, %o1\n        ta 21\n"
    ^ "        bcc Lbad\n"
    ^ "        nop\n"
    ^ Printf.sprintf "        cmp %%o0, %d\n" Abi.enoent
    ^ "        bne Lbad\n"
    ^ "        nop\n"
    ^ "        mov 9, %o0\n        set path, %o1\n        mov 1, %o2\n"
    ^ "        ta 20\n" (* write(9, ...): never opened *)
    ^ "        bcc Lbad\n"
    ^ "        nop\n"
    ^ Printf.sprintf "        cmp %%o0, %d\n" Abi.ebadf
    ^ "        bne Lbad\n"
    ^ "        nop\n"
    ^ "        mov 0, %o0\n        ta 17\n        nop\n"
    ^ "Lbad:   mov 1, %o0\n        ta 17\n        nop\n"
    ^ "        .data\npath:   .asciz \"nope.txt\"\n"
  in
  let r = execute_ok ~os:Spec.empty (assemble src) in
  Alcotest.(check int) "errno paths taken" 0 (exit_code r)

(* the policy denies before the call has any side effect *)
let test_policy_interposition () =
  let spec =
    Spec.make ~files:[ ("out.txt", "untouched") ]
      ~policy:(Policy.Deny_write_fd_above 2) ()
  in
  let src =
    "        set path, %o0\n        mov 1, %o1\n        ta 21\n" (* open wr *)
    ^ "        bcs Lbad\n"
    ^ "        nop\n"
    ^ "        set path, %o1\n        mov 4, %o2\n"
    ^ "        ta 20\n" (* write(fd>2): denied *)
    ^ "        bcc Lbad\n" (* must fail *)
    ^ "        nop\n"
    ^ Printf.sprintf "        cmp %%o0, %d\n" Abi.eperm
    ^ "        bne Lbad\n"
    ^ "        nop\n"
    ^ "        mov 0, %o0\n        ta 17\n        nop\n"
    ^ "Lbad:   mov 1, %o0\n        ta 17\n        nop\n"
    ^ "        .data\npath:   .asciz \"out.txt\"\n"
  in
  match Asm.assemble src with
  | Error m -> Alcotest.failf "assembly failed: %s" m
  | Ok exe -> (
      match Emu.load exe with
      | exception Emu.Fault m -> Alcotest.failf "load: %s" m
      | t -> (
          let st = Os.install t spec in
          match Emu.run ~fuel:100_000 t with
          | r ->
              Alcotest.(check int) "EPERM surfaced" 0 r.Emu.exit_code;
              Alcotest.(check int) "denial counted" 1 (Os.denied_count st);
              (* the open truncated out.txt, but the denied write left it
                 alone: suppression means no side effect at all *)
              Alcotest.(check (option string))
                "denied write had no effect" (Some "")
                (Os.file_contents st "out.txt")
          | exception Emu.Out_of_fuel -> Alcotest.fail "out of fuel"))

(* ------------------------------------------------------------------ *)
(* workload generator                                                  *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let cfg seed = { Gen.default with Gen.seed } in
  let s1, w1 = Gen.os_program (cfg 7) in
  let s2, w2 = Gen.os_program (cfg 7) in
  Alcotest.(check string) "same seed, same source" s1 s2;
  Alcotest.(check bool) "same seed, same world" true (w1 = w2);
  let e1 = assemble s1 and e2 = assemble s2 in
  Alcotest.(check string) "byte-identical SEF" (Sef.to_string e1)
    (Sef.to_string e2);
  let s3, _ = Gen.os_program (cfg 8) in
  Alcotest.(check bool) "different seed differs" true (s1 <> s3)

let test_gen_programs_run () =
  (* every generator shape must assemble and exit 0 in its own world *)
  for seed = 0 to 11 do
    let src, world = Gen.os_program { Gen.default with Gen.seed } in
    let exe = assemble src in
    let spec = Corpus.spec_of_world world in
    let r = execute_ok ~fuel:2_000_000 ~os:spec exe in
    Alcotest.(check int) (Printf.sprintf "seed %d exits 0" seed) 0 (exit_code r);
    (* OS-bound by construction: the run makes syscalls *)
    let sys =
      Array.to_list r.Dx.r_events
      |> List.exists (function Emu.Ob_syscall _ -> true | _ -> false)
    in
    Alcotest.(check bool) (Printf.sprintf "seed %d uses the OS" seed) true sys
  done

(* ------------------------------------------------------------------ *)
(* corpus x toolbox equivalence                                        *)
(* ------------------------------------------------------------------ *)

let fuel = 2_000_000

let test_corpus_assembles () =
  let progs = Corpus.all_os () in
  Alcotest.(check bool)
    (Printf.sprintf "at least 6 OS programs (got %d)" (List.length progs))
    true
    (List.length progs >= 6);
  List.iter
    (fun (name, exe, spec) ->
      let r = execute_ok ~fuel ~os:spec exe in
      match r.Dx.r_stop with
      | Dx.S_exit _ -> ()
      | s ->
          Alcotest.failf "%s: expected exit, got %s" name
            (Format.asprintf "%a" Dx.pp_stop s))
    progs

let test_all_tools_equivalent () =
  List.iter
    (fun (prog, exe, spec) ->
      List.iter
        (fun tool ->
          match Toolbox.measure ~fuel ~os:spec ~prog tool mach exe with
          | Error e ->
              Alcotest.failf "%s x %s: %s" tool prog (Diag.error_message e)
          | Ok ms ->
              let e = ms.Toolbox.ms_entry in
              Alcotest.(check string)
                (Printf.sprintf "%s x %s verdict" tool prog)
                "equivalent" e.Eel_obs.Ledger.le_verdict;
              Alcotest.(check int)
                (Printf.sprintf "%s x %s unexplained overhead" tool prog)
                0 e.Eel_obs.Ledger.le_unexplained)
        Toolbox.names)
    (Corpus.all_os ())

(* SFI's syscall interposition: the denied calls are masked under the
   declared suppression, and the ledger says how many *)
let test_sfi_suppression_masked () =
  let exe, spec = List.assoc "os-copy" (Corpus.os_sources) |> fun (src, spec) ->
    (assemble src, spec)
  in
  match Toolbox.measure ~fuel ~os:spec ~prog:"os-copy" "sfi" mach exe with
  | Error e -> Alcotest.failf "sfi x os-copy: %s" (Diag.error_message e)
  | Ok ms ->
      let e = ms.Toolbox.ms_entry in
      Alcotest.(check string) "equivalent under suppression" "equivalent"
        e.Eel_obs.Ledger.le_verdict;
      Alcotest.(check bool) "suppressed calls were masked" true
        (e.Eel_obs.Ledger.le_sys_masked > 0)

(* an UNdeclared denial is a contract violation: same deny world on the
   edited side, but the contract keeps quiet about it *)
let test_undeclared_deny_flagged () =
  let src, spec = List.assoc "os-copy" Corpus.os_sources in
  let exe = assemble src in
  match Toolbox.apply "sfi" mach exe with
  | Error m -> Alcotest.failf "apply sfi: %s" m
  | Ok ap -> (
      let os_b = Spec.with_policy spec Toolbox.sfi_policy in
      match
        Dx.verify_edit ~fuel ~norm_b:ap.Toolbox.ap_norm_b
          ~block_of:ap.Toolbox.ap_block_of ~os:spec ~os_b
          ~contract:ap.Toolbox.ap_contract exe ap.Toolbox.ap_edited
      with
      | Error e -> Alcotest.failf "verify: %s" (Diag.error_message e)
      | Ok er ->
          Alcotest.(check bool) "undeclared denial flagged" true
            (Dx.is_divergence er.Dx.er_report.Dx.rp_verdict))

(* a dropped write must diverge for every tool: nop the write syscall
   site in the edited image and demand a flagged verdict *)
let test_dropped_write_diverges () =
  List.iter
    (fun tool ->
      let src, spec = List.assoc "os-copy" Corpus.os_sources in
      let exe = assemble src in
      match Fault.instrument ~fuel ~os:spec tool ("os-copy", exe) with
      | Error m -> Alcotest.failf "instrument %s: %s" tool m
      | Ok inst ->
          let menu = Fault.sites inst Fault.Drop_syscall in
          Alcotest.(check bool)
            (Printf.sprintf "%s has droppable sites" tool)
            true (menu <> []);
          let armed = Fault.arm inst Fault.Drop_syscall [ 0 ] in
          let at = Fault.attempt ~fuel inst armed in
          Alcotest.(check bool)
            (Printf.sprintf "%s: dropped write flagged (%s)" tool
               at.Fault.at_verdict)
            true at.Fault.at_flagged)
    Toolbox.names

(* a reordered write: swap the payloads of two writes with pokes on the
   edited side — the data checksums must break lockstep *)
let test_reordered_write_diverges () =
  let spec = Spec.make ~stdin:"" () in
  let src =
    "        set buf, %o1\n"
    ^ "        mov 1, %o0\n        mov 1, %o2\n        ta 20\n"
    ^ "        set buf2, %o1\n"
    ^ "        mov 1, %o0\n        mov 1, %o2\n        ta 20\n"
    ^ "        mov 0, %o0\n        ta 17\n        nop\n"
    ^ "        .data\nbuf:    .asciz \"A\"\nbuf2:   .asciz \"B\"\n"
  in
  let exe = assemble src in
  (* find the .data addresses of the two payload bytes via symbols *)
  let sym name =
    match List.find_opt (fun s -> s.Sef.sym_name = name) exe.Sef.symbols with
    | Some s -> s.Sef.value
    | None -> Alcotest.failf "symbol %s missing" name
  in
  let a = sym "buf" and b = sym "buf2" in
  (* poke the edited side before it runs: swap 'A' and 'B', so the same
     two writes emit the bytes in the other order *)
  let edited = assemble src in
  let pokes_b =
    [
      { Emu.pk_at = 0; pk_addr = a; pk_value = Char.code 'B' };
      { Emu.pk_at = 0; pk_addr = b; pk_value = Char.code 'A' };
    ]
  in
  let contract = Contract.make "identity" in
  match
    Dx.verify_edit ~fuel ~pokes_b ~os:spec ~contract exe edited
  with
  | Error e -> Alcotest.failf "verify: %s" (Diag.error_message e)
  | Ok er ->
      Alcotest.(check bool) "reordered write payloads flagged" true
        (Dx.is_divergence er.Dx.er_report.Dx.rp_verdict)

(* ------------------------------------------------------------------ *)
(* eel_run subprocess: --os world flags and --exit-status              *)
(* ------------------------------------------------------------------ *)

let bin name =
  Filename.concat (Filename.dirname Sys.executable_name) ("../bin/" ^ name)

let test_eel_run_exit_status () =
  let src, _spec = List.assoc "os-count" Corpus.os_sources in
  let exe = assemble src in
  let sef = Filename.temp_file "eel_os" ".sef" in
  Sef.write_file sef exe;
  let run args =
    Sys.command
      (Printf.sprintf "%s %s %s > /dev/null 2>&1"
         (Filename.quote (bin "eel_run.exe"))
         args (Filename.quote sef))
  in
  (* os-count exits with the number of stdin bytes it counted *)
  Alcotest.(check int) "exit-status maps guest exit(n)" 5
    (run "--os --os-stdin hello --exit-status");
  Alcotest.(check int) "without --exit-status the process exits 0" 0
    (run "--os --os-stdin hello");
  Alcotest.(check int) "empty stdin counts zero" 0
    (run "--os --exit-status");
  Sys.remove sef

let test_eel_run_os_file () =
  let src, _ = List.assoc "os-copy" Corpus.os_sources in
  let exe = assemble src in
  let sef = Filename.temp_file "eel_os" ".sef" in
  Sef.write_file sef exe;
  let payload = Filename.temp_file "eel_os" ".txt" in
  let oc = open_out_bin payload in
  output_string oc "copy me";
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf
         "%s --os --os-file in.txt=%s --exit-status %s > /dev/null 2>&1"
         (Filename.quote (bin "eel_run.exe"))
         (Filename.quote payload) (Filename.quote sef))
  in
  Alcotest.(check int) "os-copy over a host-loaded file" 0 rc;
  Sys.remove sef;
  Sys.remove payload

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "os"
    [
      ( "abi",
        [
          Alcotest.test_case "trap window" `Quick test_abi_window;
          Alcotest.test_case "mnemonics" `Quick test_abi_names;
          Alcotest.test_case "generator mirrors the ABI table" `Quick
            test_gen_mirrors_abi;
        ] );
      ( "fs",
        [
          Alcotest.test_case "read/write/truncate/snapshot" `Quick
            test_fs_semantics;
          Alcotest.test_case "fd table" `Quick test_fdtab;
          Alcotest.test_case "policy" `Quick test_policy;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "exit" `Quick test_dispatch_exit;
          Alcotest.test_case "brk" `Quick test_dispatch_brk;
          Alcotest.test_case "EINVAL on unassigned numbers" `Quick
            test_dispatch_einval;
          Alcotest.test_case "no OS layer, no dispatch" `Quick
            test_no_os_no_dispatch;
          Alcotest.test_case "open/read/write/close data path" `Quick
            test_dispatch_file_io;
          Alcotest.test_case "ENOENT and EBADF" `Quick test_dispatch_errnos;
          Alcotest.test_case "policy denies before side effects" `Quick
            test_policy_interposition;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "all shapes run" `Quick test_gen_programs_run;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "corpus assembles and exits" `Quick
            test_corpus_assembles;
          Alcotest.test_case "all tools x all OS programs" `Slow
            test_all_tools_equivalent;
          Alcotest.test_case "sfi masks declared suppression" `Quick
            test_sfi_suppression_masked;
          Alcotest.test_case "undeclared deny is a violation" `Quick
            test_undeclared_deny_flagged;
          Alcotest.test_case "dropped write diverges" `Slow
            test_dropped_write_diverges;
          Alcotest.test_case "reordered write diverges" `Quick
            test_reordered_write_diverges;
        ] );
      ( "eel_run",
        [
          Alcotest.test_case "--exit-status subprocess" `Quick
            test_eel_run_exit_status;
          Alcotest.test_case "--os-file host preload" `Quick
            test_eel_run_os_file;
        ] );
    ]
